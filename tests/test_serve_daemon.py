"""Service layer: admission queue, micro-batcher, cache (repro.serve.daemon).

The concurrency-sensitive behaviors (bounded-depth rejection, flush on
latency budget vs size) are driven through a deterministic fake engine
whose classify path can be gated by the test; the cache-correctness
tests (bit-identical hits, LRU order) run against the real session
engine.
"""

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.obs import metrics_registry
from repro.serve import (
    DaemonConfig,
    EngineResponse,
    ExplanationCache,
    PreparedRequest,
    RequestRejected,
    ServeDaemon,
)


def _sample(name: str) -> SimpleNamespace:
    return SimpleNamespace(program=SimpleNamespace(name=name), family="fake")


def _response(name: str, fingerprint: str) -> EngineResponse:
    return EngineResponse(
        name=name,
        fingerprint=fingerprint,
        probabilities=np.array([0.75, 0.25]),
        predicted_class=0,
        family="fake",
        explainer="CFGExplainer",
        explanation=SimpleNamespace(node_order=np.array([0])),
    )


class FakeEngine:
    """Deterministic engine double; ``gate`` stalls the classify stage
    and ``entered`` reports that the service thread reached it."""

    default_explainer = "CFGExplainer"

    def __init__(self):
        self.gate = threading.Event()
        self.gate.set()
        self.entered = threading.Event()
        self.batches: list[int] = []

    def admit(self, sample, graph=None, deadline=None, stage_hook=None):
        if stage_hook is not None:
            for stage in ("sanitize", "verify", "reduce"):
                stage_hook(stage)
        return PreparedRequest(
            sample=sample,
            graph=None,
            fingerprint=f"fp-{sample.program.name}",
            deadline=deadline,
        )

    def classify(self, requests):
        self.entered.set()
        assert self.gate.wait(timeout=10), "classify gate never released"
        self.batches.append(len(requests))
        return np.tile([0.75, 0.25], (len(requests), 1))

    def execute(self, request, probabilities=None, explainer=None):
        return _response(request.sample.program.name, request.fingerprint)


def _wait_for(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


# ----------------------------------------------------------------------
# admission queue
# ----------------------------------------------------------------------
def test_bounded_queue_rejects_with_backpressure():
    engine = FakeEngine()
    engine.gate.clear()  # service thread stalls inside classify
    config = DaemonConfig(
        max_queue_depth=1, max_batch=1, batch_window_ms=0.0, cache_capacity=0
    )
    before = metrics_registry().snapshot()
    with ServeDaemon(engine, config) as daemon:
        # First request: picked up by the service thread, stalls on the
        # gate.  Second: sits in the queue, filling its single slot.
        first = threading.Thread(target=daemon.submit, args=(_sample("a"),))
        first.start()
        assert engine.entered.wait(timeout=5)
        second = threading.Thread(target=daemon.submit, args=(_sample("b"),))
        second.start()
        assert _wait_for(daemon._queue.full)
        with pytest.raises(RequestRejected) as excinfo:
            daemon.submit(_sample("c"))
        assert excinfo.value.reason == "backpressure"
        engine.gate.set()
        first.join(timeout=10)
        second.join(timeout=10)
    assert sorted(engine.batches) == [1, 1]
    delta = metrics_registry().delta_since(before)
    assert delta.get("serve.rejected.backpressure", 0) == 1


# ----------------------------------------------------------------------
# micro-batcher
# ----------------------------------------------------------------------
def test_flush_on_latency_budget_coalesces():
    engine = FakeEngine()
    engine.gate.clear()  # hold batch 1 so tickets 2..4 pile up
    config = DaemonConfig(
        max_queue_depth=32, max_batch=8, batch_window_ms=40.0, cache_capacity=0
    )
    before = metrics_registry().snapshot()
    with ServeDaemon(engine, config) as daemon:
        threads = [
            threading.Thread(target=daemon.submit, args=(_sample(f"g{i}"),))
            for i in range(4)
        ]
        threads[0].start()
        # The service thread must be inside classify (its first batch
        # closed) before the pile-up starts.
        assert engine.entered.wait(timeout=5)
        for thread in threads[1:]:
            thread.start()
        assert _wait_for(lambda: daemon._queue.qsize() == 3)
        engine.gate.set()
        for thread in threads:
            thread.join(timeout=10)
    delta = metrics_registry().delta_since(before)
    # Ticket 1 flushed alone (it was picked up before the others
    # arrived); tickets 2-4 coalesced into one batch, closed by the
    # latency budget (3 < max_batch) — never by the size cap.
    assert engine.batches == [1, 3]
    assert delta.get("serve.batch.flush_on_budget", 0) == 2
    assert delta.get("serve.batch.flush_on_size", 0) == 0


def test_flush_on_size_cap():
    engine = FakeEngine()
    config = DaemonConfig(
        max_queue_depth=32, max_batch=2, batch_window_ms=5000.0, cache_capacity=0
    )
    before = metrics_registry().snapshot()
    with ServeDaemon(engine, config) as daemon:
        threads = [
            threading.Thread(target=daemon.submit, args=(_sample(f"g{i}"),))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
    delta = metrics_registry().delta_since(before)
    # With a 5-second budget the only way a batch closes is the size
    # cap, so the four tickets must flush in pairs — and quickly: a
    # budget flush would have stalled each pair for the full window.
    assert engine.batches == [2, 2]
    assert delta.get("serve.batch.flush_on_size", 0) == 2
    assert delta.get("serve.batch.flush_on_budget", 0) == 0


# ----------------------------------------------------------------------
# explanation cache
# ----------------------------------------------------------------------
def test_cache_hit_bit_identical_to_cold(serve_engine, serve_corpus):
    with ServeDaemon(serve_engine, DaemonConfig()) as daemon:
        cold = daemon.submit(serve_corpus[0])
        warm = daemon.submit(serve_corpus[0])
    assert not cold.cached
    assert warm.cached
    assert warm.fingerprint == cold.fingerprint
    # Bit-identical, not merely close: the cache returns the stored
    # arrays themselves (CFGExplainer's interpret loop is
    # deterministic, so this equals a cold recompute too).
    assert np.array_equal(warm.probabilities, cold.probabilities)
    assert np.array_equal(
        warm.explanation.node_order, cold.explanation.node_order
    )
    assert np.array_equal(
        warm.explanation.node_scores, cold.explanation.node_scores
    )
    assert warm.predicted_class == cold.predicted_class


def test_cache_hit_and_miss_counters(serve_engine, serve_corpus):
    before = metrics_registry().snapshot()
    with ServeDaemon(serve_engine, DaemonConfig()) as daemon:
        daemon.submit(serve_corpus[0])
        daemon.submit(serve_corpus[0])
        daemon.submit(serve_corpus[1])
    delta = metrics_registry().delta_since(before)
    assert delta.get("serve.cache.hit", 0) == 1
    assert delta.get("serve.cache.miss", 0) == 2


def test_lru_eviction_order():
    cache = ExplanationCache(capacity=2)
    a, b, c = (_response(n, f"fp-{n}") for n in ("a", "b", "c"))
    cache.put(a)
    cache.put(b)
    assert cache.get("fp-a") is not None  # refresh a: b is now LRU
    cache.put(c)  # evicts b
    assert cache.get("fp-b") is None
    assert cache.keys() == ["fp-a", "fp-c"]
    assert cache.get("fp-a").cached
    assert cache.get("fp-c").cached


def test_cache_capacity_zero_disables():
    cache = ExplanationCache(capacity=0)
    cache.put(_response("a", "fp-a"))
    assert cache.get("fp-a") is None
    assert len(cache) == 0


def test_concurrent_submissions_all_answered(serve_engine, serve_corpus):
    """Several client threads through the real engine: every request is
    answered with the right graph's response (no ticket mixups)."""
    results: dict[int, EngineResponse] = {}
    errors: list[BaseException] = []

    def client(index: int) -> None:
        try:
            results[index] = daemon.submit(serve_corpus[index % 3])
        except BaseException as error:  # pragma: no cover - diagnostic
            errors.append(error)

    with ServeDaemon(serve_engine, DaemonConfig(max_batch=4)) as daemon:
        threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    assert not errors
    assert len(results) == 6
    for index, response in results.items():
        assert response.name == serve_corpus[index % 3].program.name


def test_submit_before_start_raises(serve_engine, serve_corpus):
    daemon = ServeDaemon(serve_engine, DaemonConfig())
    with pytest.raises(RuntimeError, match="not started"):
        daemon.submit(serve_corpus[0])


def test_stop_drains_admitted_tickets():
    engine = FakeEngine()
    config = DaemonConfig(max_queue_depth=8, max_batch=2, batch_window_ms=1.0)
    daemon = ServeDaemon(engine, config)
    daemon.start()
    responses = []
    threads = [
        threading.Thread(
            target=lambda n: responses.append(daemon.submit(_sample(n))),
            args=(f"g{i}",),
        )
        for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    daemon.stop()
    assert len(responses) == 4
    assert daemon._thread is None
