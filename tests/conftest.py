"""Shared fixtures: a small trained pipeline reused across test modules.

Training even a scaled-down GNN takes a few seconds, so the expensive
artifacts are session-scoped: one corpus, one trained GNN, one trained
CFGExplainer model.
"""

import numpy as np
import pytest

from repro.acfg import ACFGDataset, FeatureScaler, train_test_split
from repro.core import CFGExplainerModel, train_cfgexplainer
from repro.gnn import GCNClassifier, train_gnn
from repro.malgen import generate_corpus


@pytest.fixture(scope="session")
def small_dataset():
    corpus = generate_corpus(6, seed=123)
    dataset = ACFGDataset.from_corpus(corpus)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=0)
    scaler = FeatureScaler().fit(list(train))
    return train.scaled(scaler), test.scaled(scaler)


@pytest.fixture(scope="session")
def trained_gnn(small_dataset):
    train_set, _ = small_dataset
    model = GCNClassifier(hidden=(32, 24, 16), rng=np.random.default_rng(0))
    train_gnn(model, train_set, epochs=40, batch_size=16, lr=0.005, seed=0)
    return model


@pytest.fixture(scope="session")
def serve_corpus():
    """The same corpus ``small_dataset`` was built from, regenerated."""
    return generate_corpus(6, seed=123)


@pytest.fixture(scope="session")
def serve_engine(serve_corpus, trained_gnn, trained_theta):
    """A serving engine over the session's trained model artifacts."""
    from repro.core import CFGExplainer
    from repro.serve import InferenceEngine

    dataset = ACFGDataset.from_corpus(serve_corpus)
    train, _ = train_test_split(dataset, test_fraction=0.25, seed=0)
    scaler = FeatureScaler().fit(list(train))
    return InferenceEngine(
        gnn=trained_gnn,
        scaler=scaler,
        explainers={"CFGExplainer": CFGExplainer(trained_gnn, trained_theta)},
        families=dataset.families,
    )


@pytest.fixture(scope="session")
def trained_theta(small_dataset, trained_gnn):
    train_set, _ = small_dataset
    theta = CFGExplainerModel(
        trained_gnn.embedding_size,
        train_set.num_classes,
        rng=np.random.default_rng(1),
    )
    train_cfgexplainer(
        theta, trained_gnn, train_set, num_epochs=150, minibatch_size=16,
        lr=0.003, seed=0,
    )
    return theta
