"""Tests for the score-averaging CFGExplainer ensemble."""

import numpy as np
import pytest

from repro.core import CFGExplainerEnsemble, CFGExplainerModel, interpret
from repro.nn import Tensor


def members(k=3, f=8):
    return [
        CFGExplainerModel(f, 12, rng=np.random.default_rng(seed))
        for seed in range(k)
    ]


class TestEnsemble:
    def test_scores_are_member_mean(self):
        ensemble = CFGExplainerEnsemble(members(3))
        z = Tensor(np.abs(np.random.default_rng(0).normal(size=(6, 8))))
        expected = np.mean(
            [m.node_scores(z, 5) for m in ensemble.members], axis=0
        )
        np.testing.assert_allclose(ensemble.node_scores(z, 5), expected)

    def test_single_member_matches_model(self):
        model = members(1)[0]
        ensemble = CFGExplainerEnsemble([model])
        z = Tensor(np.abs(np.random.default_rng(1).normal(size=(4, 8))))
        np.testing.assert_allclose(
            ensemble.node_scores(z, 4), model.node_scores(z, 4)
        )

    def test_empty_ensemble_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            CFGExplainerEnsemble([])

    def test_mixed_embedding_sizes_raise(self):
        bad = [
            CFGExplainerModel(8, 12, rng=np.random.default_rng(0)),
            CFGExplainerModel(16, 12, rng=np.random.default_rng(1)),
        ]
        with pytest.raises(ValueError, match="embedding size"):
            CFGExplainerEnsemble(bad)

    def test_parameters_concatenate_members(self):
        ensemble = CFGExplainerEnsemble(members(2))
        per_member = len(ensemble.members[0].parameters())
        assert len(ensemble.parameters()) == 2 * per_member

    def test_interpret_accepts_ensemble(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        ensemble = CFGExplainerEnsemble(
            [
                CFGExplainerModel(
                    trained_gnn.embedding_size, 12, rng=np.random.default_rng(s)
                )
                for s in (0, 1)
            ]
        )
        graph = test_set.graphs[0]
        explanation = interpret(ensemble, trained_gnn, graph, step_size=50)
        assert sorted(explanation.node_order.tolist()) == list(range(graph.n_real))
