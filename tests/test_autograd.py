"""Tests for the reverse-mode autograd engine.

The gradient of every op is checked against central finite differences,
both on hand-picked cases and via hypothesis-generated random inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    CSRMatrix,
    Tensor,
    cross_entropy_batch,
    csr_matmul,
    no_grad,
    segment_max,
    segment_sum,
)


def finite_diff(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build, x: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autograd gradient of ``build(Tensor)`` to finite differences."""
    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    numeric = finite_diff(lambda arr: build(Tensor(arr)).item(), x.copy())
    np.testing.assert_allclose(t.grad, numeric, atol=atol, rtol=1e-4)


class TestElementwiseOps:
    def test_add_gradient(self):
        check_gradient(lambda t: (t + 3.0).sum(), np.array([[1.0, -2.0], [0.5, 4.0]]))

    def test_mul_gradient(self):
        check_gradient(lambda t: (t * t).sum(), np.array([[1.0, -2.0], [0.5, 4.0]]))

    def test_div_gradient(self):
        check_gradient(lambda t: (t / 2.5).sum(), np.array([[1.0, -2.0]]))

    def test_rdiv_gradient(self):
        check_gradient(lambda t: (1.0 / t).sum(), np.array([[1.0, -2.0, 0.5]]))

    def test_pow_gradient(self):
        check_gradient(lambda t: (t**3).sum(), np.array([1.0, 2.0, -1.5]))

    def test_neg_and_sub(self):
        check_gradient(lambda t: (5.0 - t).sum(), np.array([1.0, 2.0]))

    def test_relu_gradient(self):
        check_gradient(lambda t: t.relu().sum(), np.array([1.0, -2.0, 0.5, -0.1]))

    def test_sigmoid_gradient(self):
        check_gradient(lambda t: t.sigmoid().sum(), np.array([-3.0, 0.0, 2.0, 50.0]))

    def test_sigmoid_extreme_values_stable(self):
        t = Tensor(np.array([-800.0, 800.0]))
        out = t.sigmoid().numpy()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_tanh_gradient(self):
        check_gradient(lambda t: t.tanh().sum(), np.array([-1.0, 0.0, 0.7]))

    def test_exp_gradient(self):
        check_gradient(lambda t: t.exp().sum(), np.array([-1.0, 0.0, 1.5]))

    def test_log_gradient_with_bias(self):
        check_gradient(lambda t: t.log(eps=1e-3).sum(), np.array([0.5, 1.0, 2.0]))


class TestMatrixOps:
    def test_matmul_gradient_left(self):
        rng = np.random.default_rng(0)
        b = np.asarray(rng.normal(size=(3, 2)))
        check_gradient(lambda t: (t @ Tensor(b)).sum(), np.asarray(rng.normal(size=(4, 3))))

    def test_matmul_gradient_right(self):
        rng = np.random.default_rng(1)
        a = np.asarray(rng.normal(size=(4, 3)))
        check_gradient(lambda t: (Tensor(a) @ t).sum(), np.asarray(rng.normal(size=(3, 2))))

    def test_transpose_gradient(self):
        check_gradient(lambda t: (t.T * 2.0).sum(), np.arange(6.0).reshape(2, 3))

    def test_reshape_gradient(self):
        check_gradient(lambda t: (t.reshape(3, 2) ** 2).sum(), np.arange(6.0).reshape(2, 3))

    def test_getitem_gradient(self):
        check_gradient(lambda t: (t[1:, :2] ** 2).sum(), np.arange(9.0).reshape(3, 3))

    def test_concatenate_gradient(self):
        a = np.array([[1.0, 2.0]])

        def build(t):
            return Tensor.concatenate([t, Tensor(a)], axis=0).sum()

        check_gradient(build, np.array([[3.0, 4.0]]))


class TestBroadcasting:
    def test_bias_broadcast_gradient(self):
        x = np.asarray(np.random.default_rng(2).normal(size=(5, 3)))
        check_gradient(lambda t: (Tensor(x) + t).sum(), np.zeros((1, 3)))

    def test_scalar_broadcast(self):
        check_gradient(lambda t: (t * np.ones((4, 4))).sum(), np.array(2.0))

    def test_row_times_matrix(self):
        x = np.asarray(np.random.default_rng(3).normal(size=(4, 3)))
        check_gradient(lambda t: (Tensor(x) * t).sum(), np.ones((1, 3)))


class TestReductionsAndSoftmax:
    def test_sum_axis_gradient(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), np.arange(6.0).reshape(2, 3))

    def test_mean_gradient(self):
        check_gradient(lambda t: t.mean(), np.arange(6.0).reshape(2, 3))

    def test_max_gradient(self):
        check_gradient(lambda t: t.max(), np.array([1.0, 5.0, 3.0]))

    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(4).normal(size=(3, 5)))
        out = t.softmax(axis=-1).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(3), atol=1e-12)

    def test_softmax_gradient(self):
        weights = np.array([0.3, -1.2, 2.0, 0.1])

        def build(t):
            return (t.softmax(axis=-1) * Tensor(weights)).sum()

        check_gradient(build, np.array([0.5, 1.5, -0.5, 0.0]))

    def test_log_softmax_gradient(self):
        def build(t):
            return t.log_softmax(axis=-1)[0:1, 1:2].sum()

        check_gradient(build, np.array([[0.5, 1.5, -0.5]]))

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(5).normal(size=(2, 6)))
        np.testing.assert_allclose(
            x.log_softmax().numpy(), np.log(x.softmax().numpy()), atol=1e-12
        )


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = (t * 3.0 + t * 4.0).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_diamond_graph(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        a = t * 2.0
        b = t + 1.0
        out = (a * b).sum()  # d/dt (2t(t+1)) = 4t + 2
        out.backward()
        np.testing.assert_allclose(t.grad, [14.0])

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            out = (t * 2.0).sum()
        assert not out.requires_grad

    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_detach_breaks_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        frozen = (t * 3.0).detach()
        assert not frozen.requires_grad

    def test_zero_grad(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 2.0).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_deep_chain_does_not_recurse(self):
        # Topological walk is iterative; 5000 chained ops must not blow the stack.
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(5000):
            out = out + 1.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])


class TestSegmentAndSparseOps:
    """Gradients of the batched-execution ops (segment pooling, CSR matmul)."""

    SEGMENTS = np.array([0, 0, 1, 1, 1, 2])

    def test_segment_sum_gradient(self):
        x = np.asarray(np.random.default_rng(6).normal(size=(6, 3)))
        check_gradient(
            lambda t: (segment_sum(t, self.SEGMENTS, 3) ** 2).sum(), x
        )

    def test_segment_sum_matches_per_segment_sums(self):
        x = Tensor(np.arange(12.0).reshape(6, 2))
        out = segment_sum(x, self.SEGMENTS, 3).numpy()
        np.testing.assert_allclose(out[0], x.numpy()[:2].sum(axis=0))
        np.testing.assert_allclose(out[1], x.numpy()[2:5].sum(axis=0))
        np.testing.assert_allclose(out[2], x.numpy()[5:].sum(axis=0))

    def test_segment_max_gradient(self):
        x = np.asarray(np.random.default_rng(7).normal(size=(6, 3)))
        check_gradient(
            lambda t: (segment_max(t, self.SEGMENTS, 3) * 1.5).sum(), x
        )

    def test_segment_max_unsorted_segments(self):
        shuffled = np.array([2, 0, 1, 0, 1, 1])
        x = np.asarray(np.random.default_rng(8).normal(size=(6, 2)))
        check_gradient(lambda t: segment_max(t, shuffled, 3).sum(), x)

    def test_segment_max_splits_tied_gradient(self):
        x = Tensor(np.array([[1.0], [1.0], [0.5]]), requires_grad=True)
        segment_max(x, np.array([0, 0, 0]), 1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5], [0.5], [0.0]])

    def test_segment_max_rejects_empty_segment(self):
        with pytest.raises(ValueError, match="non-empty"):
            segment_max(Tensor(np.ones((2, 1))), np.array([0, 2]), 3)

    def test_segment_ids_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one entry per row"):
            segment_sum(Tensor(np.ones((3, 1))), np.array([0, 1]), 2)

    def test_csr_matmul_gradient(self):
        rng = np.random.default_rng(9)
        dense = rng.choice([0.0, 0.0, 1.0, 0.5], size=(5, 5))
        a = CSRMatrix.from_dense(dense)
        x = np.asarray(rng.normal(size=(5, 3)))
        check_gradient(lambda t: (csr_matmul(a, t) ** 2).sum(), x)

    def test_csr_matmul_matches_dense(self):
        rng = np.random.default_rng(10)
        dense = rng.choice([0.0, 0.0, 0.7, 2.0], size=(4, 4))
        x = rng.normal(size=(4, 2))
        out = csr_matmul(CSRMatrix.from_dense(dense), Tensor(x)).numpy()
        np.testing.assert_allclose(out, dense @ x, atol=1e-12)

    def test_block_diagonal_layout(self):
        a = CSRMatrix.block_diagonal(
            [np.eye(2), np.full((1, 1), 3.0)]
        )
        expected = np.zeros((3, 3))
        expected[:2, :2] = np.eye(2)
        expected[2, 2] = 3.0
        np.testing.assert_allclose(a.toarray(), expected)

    def test_cross_entropy_batch_gradient(self):
        targets = np.array([2, 0])
        check_gradient(
            lambda t: cross_entropy_batch(t, targets),
            np.asarray(np.random.default_rng(11).normal(size=(2, 4))),
        )

    def test_cross_entropy_batch_is_mean_of_rows(self):
        from repro.nn import cross_entropy

        rng = np.random.default_rng(12)
        logits = rng.normal(size=(3, 5))
        targets = np.array([1, 4, 0])
        batched = cross_entropy_batch(Tensor(logits), targets).item()
        rows = [
            cross_entropy(Tensor(logits[i]), int(t)).item()
            for i, t in enumerate(targets)
        ]
        np.testing.assert_allclose(batched, np.mean(rows), atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_sparse_gcn_layer_gradient(self, seed):
        """A CSR propagation + segment pooling chain matches finite diffs."""
        rng = np.random.default_rng(seed)
        dense = rng.choice([0.0, 0.0, 0.0, 1.0], size=(6, 6))
        a = CSRMatrix.from_dense(dense)
        w = np.asarray(rng.normal(size=(2, 3)))
        segments = np.array([0, 0, 0, 1, 1, 1])

        def build(t):
            h = csr_matmul(a, t @ Tensor(w)).relu()
            return (segment_sum(h, segments, 2) ** 2).sum()

        check_gradient(build, np.asarray(rng.normal(size=(6, 2))), atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_mlp_gradient_matches_finite_difference(rows, cols, seed):
    """A random 2-layer network's input gradient matches finite differences."""
    rng = np.random.default_rng(seed)
    w1 = np.asarray(rng.normal(size=(cols, 3)))
    w2 = np.asarray(rng.normal(size=(3, 1)))
    x = np.asarray(rng.normal(size=(rows, cols)))

    def build(t):
        hidden = (t @ Tensor(w1)).tanh()
        return (hidden @ Tensor(w2)).sigmoid().sum()

    check_gradient(build, x, atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_softmax_chain_gradient(seed):
    rng = np.random.default_rng(seed)
    x = np.asarray(rng.normal(size=(2, 5)))
    weights = np.asarray(rng.normal(size=(5,)))

    def build(t):
        return (t.softmax(axis=-1) * Tensor(weights)).sum()

    check_gradient(build, x, atol=1e-4)
