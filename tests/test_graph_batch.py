"""Batched block-diagonal engine: equivalence, caches, training parity.

The contract under test: packing graphs into a :class:`GraphBatch` and
running the batched engine is *numerically identical* (within 1e-8; in
practice ~1e-12) to the per-graph dense path, for mixed graph sizes,
single-node graphs, padded graphs and every pooling mode.
"""

import numpy as np
import pytest

from repro.acfg import ACFG
from repro.gnn import (
    AHatCache,
    EmbeddingCache,
    GCNClassifier,
    GraphBatch,
    evaluate_accuracy,
    iter_batches,
    train_gnn,
)
from repro.nn import Tensor, cross_entropy, cross_entropy_batch, no_grad

TOLERANCE = 1e-8


def make_graph(n, n_real, label=0, seed=0, d=12):
    """A random ACFG with ``n - n_real`` padding rows."""
    rng = np.random.default_rng(seed)
    adjacency = np.zeros((n, n))
    for i in range(n_real - 1):
        adjacency[i, i + 1] = float(rng.choice([1.0, 2.0]))
    if n_real > 2:
        adjacency[n_real - 1, 0] = 1.0  # a back edge for cycles
    features = np.zeros((n, d))
    features[:n_real] = rng.uniform(0, 1, size=(n_real, d))
    return ACFG(adjacency, features, label=label, family="Bagle", n_real=n_real)


@pytest.fixture
def mixed_batch_graphs():
    """Mixed sizes, including a single-node graph and heavy padding."""
    return [
        make_graph(9, 6, label=1, seed=0),
        make_graph(1, 1, label=3, seed=1),  # single node, no padding
        make_graph(12, 3, label=7, seed=2),  # mostly padding
        make_graph(5, 5, label=2, seed=3),  # no padding
        make_graph(4, 1, label=0, seed=4),  # single real node + padding
    ]


class TestBatchedForwardEquivalence:
    @pytest.mark.parametrize("pooling", ["max", "sum", "mean"])
    def test_batched_matches_per_graph(self, mixed_batch_graphs, pooling):
        """Logits, embeddings and pooled readout agree within 1e-8."""
        model = GCNClassifier(
            hidden=(16, 8), pooling=pooling, rng=np.random.default_rng(0)
        )
        batch = GraphBatch.from_graphs(mixed_batch_graphs)
        with no_grad():
            z_batch, logits_batch = model.forward_batch(batch)
            probs_batch = logits_batch.softmax(axis=-1)
        for i, graph in enumerate(mixed_batch_graphs):
            with no_grad():
                z, probs = model.forward_acfg(graph)
                logits = model.logits(z)
            np.testing.assert_allclose(
                z_batch.numpy()[batch.rows_of(i)], z.numpy(), atol=TOLERANCE
            )
            np.testing.assert_allclose(
                logits_batch.numpy()[i], logits.numpy(), atol=TOLERANCE
            )
            np.testing.assert_allclose(
                probs_batch.numpy()[i], probs.numpy(), atol=TOLERANCE
            )

    def test_predict_batch_matches_predict(self, mixed_batch_graphs):
        model = GCNClassifier(hidden=(16, 8), rng=np.random.default_rng(1))
        batched = model.predict_batch(mixed_batch_graphs, batch_size=2)
        per_graph = [model.predict(g) for g in mixed_batch_graphs]
        np.testing.assert_array_equal(batched, per_graph)

    def test_batched_loss_matches_per_graph_sum(self, mixed_batch_graphs):
        """The mini-batch loss equals the mean of per-graph losses."""
        model = GCNClassifier(hidden=(16, 8), rng=np.random.default_rng(2))
        batch = GraphBatch.from_graphs(mixed_batch_graphs)
        with no_grad():
            _, logits = model.forward_batch(batch)
            batched = cross_entropy_batch(logits, batch.labels).item()
            per_graph = np.mean(
                [
                    cross_entropy(
                        model.logits(model.forward_acfg(g)[0]), g.label
                    ).item()
                    for g in mixed_batch_graphs
                ]
            )
        np.testing.assert_allclose(batched, per_graph, atol=TOLERANCE)

    def test_batched_gradients_match_per_graph(self, mixed_batch_graphs):
        """One batched backward produces the per-graph loop's gradients."""
        model_a = GCNClassifier(hidden=(16, 8), rng=np.random.default_rng(3))
        model_b = GCNClassifier(hidden=(16, 8), rng=np.random.default_rng(3))

        batch = GraphBatch.from_graphs(mixed_batch_graphs)
        _, logits = model_a.forward_batch(batch)
        cross_entropy_batch(logits, batch.labels).backward()

        loss = None
        for graph in mixed_batch_graphs:
            z, _ = model_b.forward_acfg(graph)
            term = cross_entropy(model_b.logits(z), graph.label)
            loss = term if loss is None else loss + term
        (loss * (1.0 / len(mixed_batch_graphs))).backward()

        for pa, pb in zip(model_a.parameters(), model_b.parameters()):
            np.testing.assert_allclose(pa.grad, pb.grad, atol=TOLERANCE)

    def test_training_histories_identical_across_modes(self, mixed_batch_graphs):
        """Same seeds, same losses: mode switches wall-clock, not math."""
        from repro.acfg.dataset import ACFGDataset

        graphs = [g.padded(12) for g in mixed_batch_graphs]
        dataset = ACFGDataset(graphs)
        histories = {}
        for mode in ("batched", "per_graph"):
            model = GCNClassifier(hidden=(16, 8), rng=np.random.default_rng(4))
            histories[mode] = train_gnn(
                model, dataset, epochs=3, batch_size=2, seed=0, mode=mode
            ).losses
        np.testing.assert_allclose(
            histories["batched"], histories["per_graph"], atol=TOLERANCE
        )

    def test_rejects_unknown_mode(self, mixed_batch_graphs):
        from repro.acfg.dataset import ACFGDataset

        dataset = ACFGDataset([g.padded(12) for g in mixed_batch_graphs])
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="mode"):
            train_gnn(model, dataset, epochs=1, mode="vectorized")


class TestGraphBatchStructure:
    def test_layout(self, mixed_batch_graphs):
        batch = GraphBatch.from_graphs(mixed_batch_graphs)
        sizes = [g.n for g in mixed_batch_graphs]
        assert batch.num_graphs == len(mixed_batch_graphs)
        assert batch.total_nodes == sum(sizes)
        np.testing.assert_array_equal(batch.sizes, sizes)
        np.testing.assert_array_equal(
            batch.labels, [g.label for g in mixed_batch_graphs]
        )
        assert batch.a_hat.shape == (sum(sizes), sum(sizes))
        # Segment ids are sorted and match the per-graph row counts.
        np.testing.assert_array_equal(
            np.bincount(batch.segment_ids, minlength=len(sizes)), sizes
        )
        # Active mask marks exactly the real rows of each graph.
        for i, graph in enumerate(mixed_batch_graphs):
            mask = batch.active_mask[batch.rows_of(i)]
            assert mask.sum() == graph.n_real

    def test_block_diagonal_isolation(self, mixed_batch_graphs):
        """No nonzero of the packed Â crosses a graph boundary."""
        batch = GraphBatch.from_graphs(mixed_batch_graphs)
        dense = batch.a_hat.toarray()
        for i in range(batch.num_graphs):
            rows = batch.rows_of(i)
            outside = dense[rows].copy()
            outside[:, rows] = 0.0
            assert np.all(outside == 0.0)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="zero graphs"):
            GraphBatch.from_graphs([])

    def test_iter_batches_respects_order(self, mixed_batch_graphs):
        order = np.array([4, 2, 0, 1, 3])
        batches = list(iter_batches(mixed_batch_graphs, 2, order=order))
        assert [b.num_graphs for b in batches] == [2, 2, 1]
        flat = [g for b in batches for g in b.graphs]
        assert [g.label for g in flat] == [
            mixed_batch_graphs[int(i)].label for i in order
        ]


class TestAHatCache:
    def test_repeated_predict_hits_cache(self, mixed_batch_graphs):
        """Regression: Â must be computed once per graph, not per call."""
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        graph = mixed_batch_graphs[0]
        model.predict(graph)
        after_first = model.a_hat_cache.cache_info()
        assert after_first.misses == 1
        model.predict(graph)
        model.predict_proba(graph)
        after_repeat = model.a_hat_cache.cache_info()
        assert after_repeat.misses == 1, "Â was rebuilt on a repeated call"
        assert after_repeat.hits >= 2

    def test_batch_packing_reuses_cached_csr(self, mixed_batch_graphs):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        for _ in range(3):
            GraphBatch.from_graphs(
                mixed_batch_graphs, a_hat_cache=model.a_hat_cache
            )
        info = model.a_hat_cache.cache_info()
        assert info.misses == len(mixed_batch_graphs)
        assert info.hits == 2 * len(mixed_batch_graphs)

    def test_content_keyed_not_identity_keyed(self):
        """Mutating a graph's adjacency must invalidate the cached Â."""
        cache = AHatCache()
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = 1.0
        first = cache.get(adjacency).copy()
        adjacency[1, 2] = 1.0  # in-place mutation, same object
        second = cache.get(adjacency)
        assert cache.cache_info().misses == 2
        assert not np.allclose(first, second)

    def test_lru_eviction_bounds_size(self):
        cache = AHatCache(maxsize=2)
        for k in range(4):
            adjacency = np.zeros((2, 2))
            adjacency[0, 1] = float(k % 2 + 1)
            adjacency[1, 0] = float(k // 2 + 1)
            cache.get(adjacency)
        assert cache.cache_info().size <= 2

    def test_dense_and_csr_agree(self, mixed_batch_graphs):
        cache = AHatCache()
        graph = mixed_batch_graphs[0]
        mask = np.zeros(graph.n, dtype=bool)
        mask[: graph.n_real] = True
        np.testing.assert_allclose(
            cache.get(graph.adjacency, mask),
            cache.get_csr(graph.adjacency, mask).toarray(),
            atol=1e-15,
        )


class TestEmbeddingCache:
    def test_populate_then_forward_hits(self, mixed_batch_graphs):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        cache = EmbeddingCache(model)
        cache.populate(mixed_batch_graphs, batch_size=2)
        assert len(cache) == len(mixed_batch_graphs)
        for graph in mixed_batch_graphs:
            entry = cache.forward(graph)
            assert entry.predicted_class == model.predict(graph)
        assert cache.cache_info().misses == 0

    def test_cached_embeddings_match_direct_forward(self, mixed_batch_graphs):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        cache = EmbeddingCache(model)
        cache.populate(mixed_batch_graphs, batch_size=3)
        for graph in mixed_batch_graphs:
            with no_grad():
                z, probs = model.forward_acfg(graph)
            entry = cache.forward(graph)
            np.testing.assert_allclose(entry.z, z.numpy(), atol=TOLERANCE)
            np.testing.assert_allclose(entry.probs, probs.numpy(), atol=TOLERANCE)

    def test_miss_computes_and_stores(self, mixed_batch_graphs):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        cache = EmbeddingCache(model)
        entry = cache.forward(mixed_batch_graphs[0])
        assert cache.cache_info().misses == 1
        again = cache.forward(mixed_batch_graphs[0])
        assert again is entry
        assert cache.cache_info().hits == 1

    def test_precompute_embeddings_reuses_shared_cache(self, mixed_batch_graphs):
        from repro.acfg.dataset import ACFGDataset
        from repro.core.training import precompute_embeddings

        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        dataset = ACFGDataset([g.padded(12) for g in mixed_batch_graphs])
        cache = EmbeddingCache(model)
        cache.populate(dataset)
        populated = len(cache)
        cached = precompute_embeddings(model, dataset, embedding_cache=cache)
        assert len(cached) == len(dataset)
        assert len(cache) == populated, "explainer training re-embedded graphs"
        assert cache.cache_info().misses == 0


class TestBatchedEvaluation:
    def test_evaluate_accuracy_matches_per_graph(self, mixed_batch_graphs):
        from repro.acfg.dataset import ACFGDataset

        model = GCNClassifier(hidden=(16, 8), rng=np.random.default_rng(5))
        dataset = ACFGDataset([g.padded(12) for g in mixed_batch_graphs])
        batched = evaluate_accuracy(model, dataset, batch_size=2)
        per_graph = np.mean(
            [model.predict(g) == g.label for g in dataset]
        )
        np.testing.assert_allclose(batched, per_graph, atol=1e-15)
