"""Tests for layers, optimizers, losses and initialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Adam,
    Dense,
    GCNConv,
    SGD,
    Sequential,
    Tensor,
    binary_cross_entropy,
    cross_entropy,
    glorot_uniform,
    he_normal,
    nll_loss,
    nll_loss_from_probs,
    zeros_init,
)


class TestInit:
    def test_glorot_bounds(self):
        rng = np.random.default_rng(0)
        weights = glorot_uniform(100, 50, rng)
        limit = np.sqrt(6.0 / 150)
        assert weights.shape == (100, 50)
        assert np.abs(weights).max() <= limit

    def test_he_scale(self):
        rng = np.random.default_rng(0)
        weights = he_normal(10_000, 10, rng)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 10_000), rel=0.05)

    def test_zeros(self):
        assert zeros_init(3, 4, np.random.default_rng(0)).sum() == 0


class TestDense:
    def test_output_shape(self):
        layer = Dense(5, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_relu_activation_applied(self):
        layer = Dense(4, 4, activation="relu", rng=np.random.default_rng(0))
        out = layer(Tensor(np.random.default_rng(1).normal(size=(10, 4))))
        assert (out.numpy() >= 0).all()

    def test_sigmoid_activation_bounded(self):
        layer = Dense(4, 2, activation="sigmoid", rng=np.random.default_rng(0))
        out = layer(Tensor(np.random.default_rng(1).normal(size=(10, 4)) * 10))
        assert (out.numpy() > 0).all() and (out.numpy() < 1).all()

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError, match="unknown activation"):
            Dense(3, 3, activation="swish")

    def test_parameters_discovered(self):
        layer = Dense(3, 2)
        params = layer.parameters()
        assert len(params) == 2  # weight + bias

    def test_sequential_chains(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            Dense(4, 8, activation="relu", rng=rng), Dense(8, 2, rng=rng)
        )
        out = model(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert len(model.parameters()) == 4


class TestGCNConv:
    def test_propagation_mixes_neighbours(self):
        conv = GCNConv(2, 2, activation="linear", rng=np.random.default_rng(0))
        # Two nodes connected: output of node 0 must depend on node 1's input.
        a_hat = Tensor(np.array([[0.5, 0.5], [0.5, 0.5]]))
        x1 = Tensor(np.array([[1.0, 0.0], [0.0, 0.0]]))
        x2 = Tensor(np.array([[1.0, 0.0], [5.0, 0.0]]))
        out1 = conv(a_hat, x1).numpy()
        out2 = conv(a_hat, x2).numpy()
        assert not np.allclose(out1[0], out2[0])

    def test_isolated_node_unaffected_by_others(self):
        conv = GCNConv(2, 3, activation="linear", rng=np.random.default_rng(0))
        a_hat = Tensor(np.eye(2))
        x1 = Tensor(np.array([[1.0, 2.0], [0.0, 0.0]]))
        x2 = Tensor(np.array([[1.0, 2.0], [9.0, -9.0]]))
        np.testing.assert_allclose(
            conv(a_hat, x1).numpy()[0], conv(a_hat, x2).numpy()[0]
        )


class TestOptimizers:
    def quadratic_problem(self):
        target = np.array([3.0, -2.0])
        param = Tensor(np.zeros(2), requires_grad=True)
        return param, target

    def test_sgd_converges_on_quadratic(self):
        param, target = self.quadratic_problem()
        optimizer = SGD([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        param, target = self.quadratic_problem()
        optimizer = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            ((param - Tensor(target)) ** 2).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        param, target = self.quadratic_problem()
        optimizer = Adam([param], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            ((param - Tensor(target)) ** 2).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_adam_skips_parameters_without_grad(self):
        used = Tensor(np.zeros(1), requires_grad=True)
        unused = Tensor(np.ones(1), requires_grad=True)
        optimizer = Adam([used, unused], lr=0.1)
        optimizer.zero_grad()
        (used * 2.0).sum().backward()
        optimizer.step()
        np.testing.assert_array_equal(unused.data, np.ones(1))

    def test_weight_decay_shrinks(self):
        param = Tensor(np.array([10.0]), requires_grad=True)
        optimizer = Adam([param], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            optimizer.zero_grad()
            (param * 0.0).sum().backward()  # zero task gradient
            optimizer.step()
        assert abs(param.data[0]) < 10.0

    def test_empty_parameters_raise(self):
        with pytest.raises(ValueError):
            Adam([])


class TestLosses:
    def test_nll_from_probs_matches_definition(self):
        probs = Tensor(np.array([0.1, 0.7, 0.2]))
        loss = nll_loss_from_probs(probs, 1)
        assert loss.item() == pytest.approx(-np.log(0.7 + 1e-20))

    def test_nll_from_probs_zero_probability_is_finite(self):
        """The paper's +1e-20 bias keeps log(0) out of the loss."""
        probs = Tensor(np.array([1.0, 0.0]))
        loss = nll_loss_from_probs(probs, 1)
        assert np.isfinite(loss.item())

    def test_cross_entropy_matches_nll_of_log_softmax(self):
        logits = Tensor(np.array([1.0, 2.0, -1.0]))
        ce = cross_entropy(logits, 2).item()
        manual = -(logits.log_softmax().numpy()[2])
        assert ce == pytest.approx(manual)

    def test_nll_loss_picks_target(self):
        log_probs = Tensor(np.log(np.array([0.25, 0.5, 0.25])))
        assert nll_loss(log_probs, 1).item() == pytest.approx(-np.log(0.5))

    def test_binary_cross_entropy_perfect_prediction(self):
        probs = Tensor(np.array([1.0, 0.0]))
        loss = binary_cross_entropy(probs, np.array([1.0, 0.0]))
        assert loss.item() == pytest.approx(0.0, abs=1e-10)

    def test_binary_cross_entropy_gradient_direction(self):
        logits = Tensor(np.array([0.0, 0.0]), requires_grad=True)
        probs = logits.sigmoid()
        loss = binary_cross_entropy(probs, np.array([1.0, 0.0]))
        loss.backward()
        # Pushing the first logit up and the second down lowers the loss.
        assert logits.grad[0] < 0
        assert logits.grad[1] > 0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), classes=st.integers(2, 8))
def test_property_cross_entropy_nonnegative(seed, classes):
    rng = np.random.default_rng(seed)
    logits = Tensor(np.asarray(rng.normal(size=classes)))
    target = int(rng.integers(0, classes))
    assert cross_entropy(logits, target).item() >= 0.0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_dense_gradcheck(seed):
    """Dense-layer weight gradients match finite differences."""
    rng = np.random.default_rng(seed)
    layer = Dense(3, 2, activation="tanh", rng=rng)
    x = np.asarray(rng.normal(size=(4, 3)))

    out = layer(Tensor(x)).sum()
    out.backward()
    analytic = layer.weight.grad.copy()

    eps = 1e-6
    numeric = np.zeros_like(layer.weight.data)
    for i in range(3):
        for j in range(2):
            original = layer.weight.data[i, j]
            layer.weight.data[i, j] = original + eps
            plus = layer(Tensor(x)).sum().item()
            layer.weight.data[i, j] = original - eps
            minus = layer(Tensor(x)).sum().item()
            layer.weight.data[i, j] = original
            numeric[i, j] = (plus - minus) / (2 * eps)
    np.testing.assert_allclose(analytic, numeric, atol=1e-4)
