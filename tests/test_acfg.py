"""Tests for Table I features, the ACFG container, and dataset assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acfg import (
    ACFG,
    ACFGDataset,
    FEATURE_NAMES,
    FeatureScaler,
    NUM_FEATURES,
    block_features,
    cfg_feature_matrix,
    from_sample,
    train_test_split,
)
from repro.disasm import ProgramBuilder, build_cfg
from repro.malgen import FAMILIES, generate_corpus


def tiny_cfg():
    b = ProgramBuilder("tiny")
    b.emit("mov", "eax", "42")
    b.emit("xor", "eax", "0FFh")
    b.emit("cmp", "eax", "0")
    b.emit("je", "out")
    b.emit("push", "'hello'")
    b.emit("call", "ds:MessageBoxA")
    b.label("out")
    b.emit("ret")
    return build_cfg(b.build())


class TestBlockFeatures:
    def test_feature_vector_length(self):
        assert NUM_FEATURES == 12
        assert len(FEATURE_NAMES) == 12

    def test_counts_match_tiny_program(self):
        cfg = tiny_cfg()
        features = cfg_feature_matrix(cfg)
        assert features.shape == (cfg.node_count, 12)
        block0 = features[0]
        # mov eax,42; xor eax,0FFh; cmp eax,0; je out
        assert block0[FEATURE_NAMES.index("numeric_constants")] == 3
        assert block0[FEATURE_NAMES.index("transfer_instructions")] == 1
        assert block0[FEATURE_NAMES.index("arithmetic_instructions")] == 1
        assert block0[FEATURE_NAMES.index("compare_instructions")] == 1
        assert block0[FEATURE_NAMES.index("mov_instructions")] == 1
        assert block0[FEATURE_NAMES.index("total_instructions")] == 4
        assert block0[FEATURE_NAMES.index("instructions_in_vertex")] == 4

    def test_string_constant_counted(self):
        cfg = tiny_cfg()
        features = cfg_feature_matrix(cfg)
        # push 'hello'; call ds:MessageBoxA is the second block
        assert features[1][FEATURE_NAMES.index("string_constants")] == 1
        assert features[1][FEATURE_NAMES.index("call_instructions")] == 1

    def test_offspring_is_out_degree(self):
        cfg = tiny_cfg()
        features = cfg_feature_matrix(cfg)
        offspring = FEATURE_NAMES.index("offspring")
        for block in cfg.blocks:
            assert features[block.index][offspring] == cfg.out_degree(block.index)

    def test_termination_counted(self):
        cfg = tiny_cfg()
        features = cfg_feature_matrix(cfg)
        last = cfg.node_count - 1
        assert features[last][FEATURE_NAMES.index("termination_instructions")] == 1

    def test_block_features_no_out_edges(self):
        cfg = tiny_cfg()
        vector = block_features(cfg.blocks[0], out_degree=0)
        assert vector[FEATURE_NAMES.index("offspring")] == 0


class TestACFGContainer:
    def make(self, n=4, n_real=None):
        adjacency = np.zeros((n, n))
        adjacency[0, 1] = 1
        adjacency[1, 2] = 2
        features = np.arange(n * 12, dtype=float).reshape(n, 12)
        return ACFG(adjacency, features, label=0, family="Bagle", n_real=n_real)

    def test_basic_properties(self):
        acfg = self.make()
        assert acfg.n == 4
        assert acfg.n_real == 4
        assert acfg.num_features == 12

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            ACFG(np.zeros((3, 4)), np.zeros((3, 12)), 0, "Bagle")

    def test_rejects_feature_mismatch(self):
        with pytest.raises(ValueError, match="features rows"):
            ACFG(np.zeros((3, 3)), np.zeros((4, 12)), 0, "Bagle")

    def test_rejects_bad_adjacency_values(self):
        adjacency = np.zeros((2, 2))
        adjacency[0, 1] = 5
        with pytest.raises(ValueError, match="adjacency values"):
            ACFG(adjacency, np.zeros((2, 12)), 0, "Bagle")

    def test_padding_preserves_content(self):
        acfg = self.make(4)
        padded = acfg.padded(10)
        assert padded.n == 10
        assert padded.n_real == 4
        np.testing.assert_array_equal(padded.adjacency[:4, :4], acfg.adjacency)
        np.testing.assert_array_equal(padded.features[:4], acfg.features)
        assert padded.adjacency[4:].sum() == 0
        assert padded.features[4:].sum() == 0

    def test_padding_down_raises(self):
        with pytest.raises(ValueError, match="cannot pad"):
            self.make(4).padded(2)

    def test_padding_same_size_is_identity(self):
        acfg = self.make(4)
        assert acfg.padded(4) is acfg

    def test_subgraph_adjacency_zeroes_removed_nodes(self):
        acfg = self.make(4)
        pruned = acfg.subgraph_adjacency(np.array([0, 1]))
        assert pruned[0, 1] == 1
        assert pruned[1, 2] == 0  # node 2 removed
        np.testing.assert_array_equal(pruned[2], np.zeros(4))
        np.testing.assert_array_equal(pruned[:, 2], np.zeros(4))

    def test_masked_features(self):
        acfg = self.make(3)
        masked = acfg.masked_features(np.array([1]))
        assert masked[0].sum() == 0
        np.testing.assert_array_equal(masked[1], acfg.features[1])


class TestDataset:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(2, seed=5)

    def test_from_corpus_pads_uniformly(self, corpus):
        dataset = ACFGDataset.from_corpus(corpus)
        assert len(dataset) == len(corpus)
        assert len({g.n for g in dataset}) == 1

    def test_explicit_pad_too_small_raises(self, corpus):
        with pytest.raises(ValueError, match="smaller than largest"):
            ACFGDataset.from_corpus(corpus, pad_to=2)

    def test_from_sample_tags_preserved(self, corpus):
        sample = corpus[0]
        acfg = from_sample(sample)
        assert len(acfg.block_tags) == sample.cfg.node_count

    def test_labels_and_families(self, corpus):
        dataset = ACFGDataset.from_corpus(corpus)
        assert dataset.num_classes == 12
        assert set(dataset.labels) == set(range(12))
        assert len(dataset.of_family("Zbot")) == 2

    def test_scaler_bounds_features(self, corpus):
        dataset = ACFGDataset.from_corpus(corpus)
        scaler = FeatureScaler().fit(list(dataset))
        scaled = dataset.scaled(scaler)
        for graph in scaled:
            real = graph.features[: graph.n_real]
            assert real.min() >= 0.0
            assert real.max() <= 1.0 + 1e-12
            # padding stays zero
            assert graph.features[graph.n_real :].sum() == 0

    def test_scaler_unfitted_raises(self, corpus):
        dataset = ACFGDataset.from_corpus(corpus)
        with pytest.raises(RuntimeError, match="not fitted"):
            FeatureScaler().transform(dataset[0])

    def test_split_stratified(self, corpus):
        dataset = ACFGDataset.from_corpus(corpus)
        train, test = train_test_split(dataset, test_fraction=0.5, seed=1)
        assert len(train) + len(test) == len(dataset)
        for family in FAMILIES:
            assert len(test.of_family(family)) == 1

    def test_split_always_keeps_train_member(self, corpus):
        dataset = ACFGDataset.from_corpus(corpus)
        train, test = train_test_split(dataset, test_fraction=0.9, seed=1)
        for family in FAMILIES:
            assert len(train.of_family(family)) >= 1

    def test_split_bad_fraction_raises(self, corpus):
        dataset = ACFGDataset.from_corpus(corpus)
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=1.5)

    def test_roundtrip_save_load(self, corpus, tmp_path):
        dataset = ACFGDataset.from_corpus(corpus[:4])
        dataset.save(tmp_path / "ds")
        loaded = ACFGDataset.load(tmp_path / "ds")
        assert len(loaded) == 4
        for original, restored in zip(dataset, loaded):
            np.testing.assert_array_equal(original.adjacency, restored.adjacency)
            np.testing.assert_array_equal(original.features, restored.features)
            assert original.family == restored.family
            assert original.n_real == restored.n_real
            assert original.block_tags == restored.block_tags


@settings(max_examples=15, deadline=None)
@given(
    family=st.sampled_from(FAMILIES),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_feature_invariants(family, seed):
    """Structural invariants of Table I features on arbitrary programs."""
    from repro.malgen import generate_program

    program, _ = generate_program(family, seed)
    cfg = build_cfg(program)
    features = cfg_feature_matrix(cfg)
    total = FEATURE_NAMES.index("total_instructions")
    in_vertex = FEATURE_NAMES.index("instructions_in_vertex")
    category_indices = [
        FEATURE_NAMES.index(n)
        for n in (
            "transfer_instructions",
            "call_instructions",
            "arithmetic_instructions",
            "compare_instructions",
            "mov_instructions",
            "termination_instructions",
            "data_declaration_instructions",
        )
    ]
    assert (features >= 0).all()
    np.testing.assert_array_equal(features[:, total], features[:, in_vertex])
    # Category counts cannot exceed the block's instruction count.
    assert (features[:, category_indices].sum(axis=1) <= features[:, total]).all()
    # Offspring column equals the adjacency out-degree (nonzero entries).
    adjacency = cfg.adjacency_matrix()
    out_degree = (adjacency > 0).sum(axis=1)
    np.testing.assert_array_equal(features[:, FEATURE_NAMES.index("offspring")], out_degree)
