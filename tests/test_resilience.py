"""Unit tests for repro.resilience: deadlines, fault plans, breakers.

The daemon-level integration (degradation ladder, deadline drops,
breaker shedding through ``ServeDaemon.submit``) lives in
``test_serve_resilience.py``; this module covers the primitives in
isolation — breakers against a fake clock, injectors against recorded
sleeps — so every state transition is exercised deterministically.
"""

import numpy as np
import pytest

from repro.exec import RetryPolicy
from repro.nn import NumericalError
from repro.obs import metrics_registry
from repro.resilience import (
    FAULT_KINDS,
    SERVING_STAGES,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResilienceConfig,
    corrupt_array,
    failure_kind,
)


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_fresh_deadline_not_expired(self):
        deadline = Deadline.after_ms(60_000.0)
        assert not deadline.expired
        assert 0 < deadline.remaining_ms() <= 60_000.0
        deadline.check("classify")  # must not raise

    def test_expired_deadline_checks_raise_with_stage(self):
        deadline = Deadline(expires_at=0.0, budget_ms=5.0)
        assert deadline.expired
        assert deadline.remaining_ms() == 0.0
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("explain")
        assert excinfo.value.stage == "explain"
        assert excinfo.value.budget_ms == 5.0
        assert isinstance(excinfo.value, TimeoutError)

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after_ms(0.0)
        with pytest.raises(ValueError):
            Deadline.after_ms(-10.0)


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_probability_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(error=1.5)
        with pytest.raises(ValueError):
            FaultSpec(latency=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(error=0.6, latency=0.3, nonfinite=0.2)  # sums past 1
        with pytest.raises(ValueError):
            FaultSpec(latency_ms=-1.0)

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            FaultPlan(stages={"train": FaultSpec(error=0.1)})

    def test_empty_property(self):
        assert FaultPlan().empty
        assert FaultPlan(stages={"classify": FaultSpec()}).empty
        assert not FaultPlan(stages={"classify": FaultSpec(error=0.1)}).empty

    def test_round_trip_and_file_io(self, tmp_path):
        plan = FaultPlan(
            seed=42,
            stages={
                "classify": FaultSpec(error=0.1, latency=0.2, latency_ms=7.0),
                "explain": FaultSpec(nonfinite=0.3),
            },
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_fingerprint_stable_and_seed_sensitive(self):
        stages = {"verify": FaultSpec(error=0.2)}
        a = FaultPlan(seed=1, stages=stages)
        b = FaultPlan(seed=1, stages=dict(stages))
        c = FaultPlan(seed=2, stages=stages)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_decide_is_deterministic(self):
        plan = FaultPlan(
            seed=3,
            stages={s: FaultSpec(error=0.3, latency=0.3, nonfinite=0.3)
                    for s in SERVING_STAGES},
        )
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        decisions = [
            (stage, key, attempt)
            for stage in SERVING_STAGES
            for key in ("a", "b", "c")
            for attempt in range(4)
        ]
        for stage, key, attempt in decisions:
            assert first.decide(stage, key, attempt) == second.decide(
                stage, key, attempt
            )

    def test_decide_respects_probabilities(self):
        always = FaultInjector(
            FaultPlan(stages={"classify": FaultSpec(error=1.0)})
        )
        never = FaultInjector(FaultPlan(stages={"classify": FaultSpec()}))
        for attempt in range(8):
            assert always.decide("classify", "k", attempt) == "error"
            assert never.decide("classify", "k", attempt) is None
        # Stage absent from the plan: no spec, no fault.
        assert always.decide("explain", "k") is None

    def test_fire_error_raises_injected_fault(self):
        injector = FaultInjector(
            FaultPlan(stages={"verify": FaultSpec(error=1.0)})
        )
        before = metrics_registry().snapshot()
        with pytest.raises(InjectedFault) as excinfo:
            injector.fire("verify", "prog", attempt=2)
        assert excinfo.value.stage == "verify"
        assert excinfo.value.key == "prog"
        assert excinfo.value.attempt == 2
        delta = metrics_registry().delta_since(before)
        assert delta.get("resilience.fault.verify.error", 0) == 1

    def test_fire_latency_sleeps_for_spike(self):
        naps: list[float] = []
        injector = FaultInjector(
            FaultPlan(stages={"reduce": FaultSpec(latency=1.0, latency_ms=40.0)}),
            sleep=naps.append,
        )
        assert injector.fire("reduce", "prog") is None
        assert naps == [0.04]

    def test_fire_nonfinite_returns_marker_or_raises(self):
        injector = FaultInjector(
            FaultPlan(stages={"classify": FaultSpec(nonfinite=1.0)})
        )
        assert injector.fire("classify", "prog") == "nonfinite"
        with pytest.raises(NumericalError):
            injector.fire("classify", "prog", has_output=False)

    def test_corrupt_array_poisons_copy_only(self):
        original = np.ones((2, 3))
        poisoned = corrupt_array(original)
        assert np.isnan(poisoned).any()
        assert np.isfinite(original).all()
        assert corrupt_array(np.empty(0)).size == 0

    def test_kinds_vocabulary(self):
        assert FAULT_KINDS == ("error", "latency", "nonfinite")
        assert SERVING_STAGES == (
            "sanitize", "verify", "reduce", "classify", "explain"
        )


# ----------------------------------------------------------------------
# CircuitBreaker (fake clock: every transition deterministic)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance_ms(self, ms: float) -> None:
        self.now += ms / 1000.0


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker("classify", failure_threshold=3, clock=clock)
        before = metrics_registry().snapshot()
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        delta = metrics_registry().delta_since(before)
        assert delta.get("resilience.breaker.classify.trip", 0) == 1
        assert delta.get("resilience.breaker.classify.short_circuit", 0) == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker("explain", failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "reduce", failure_threshold=1, cooldown_ms=100.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance_ms(50.0)
        assert not breaker.allow()  # cooldown not elapsed
        clock.advance_ms(60.0)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # probe in flight, everyone else sheds

    def test_successful_probe_closes_and_counts_recovery(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "verify", failure_threshold=1, cooldown_ms=10.0, clock=clock
        )
        before = metrics_registry().snapshot()
        breaker.record_failure()
        clock.advance_ms(20.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        delta = metrics_registry().delta_since(before)
        assert delta.get("resilience.breaker.verify.recover", 0) == 1

    def test_failed_probe_reopens_for_full_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "sanitize", failure_threshold=1, cooldown_ms=10.0, clock=clock
        )
        before = metrics_registry().snapshot()
        breaker.record_failure()
        clock.advance_ms(20.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # fresh cooldown
        clock.advance_ms(20.0)
        assert breaker.allow()  # next probe
        delta = metrics_registry().delta_since(before)
        assert delta.get("resilience.breaker.sanitize.reopen", 0) == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("classify", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("classify", cooldown_ms=0.0)


# ----------------------------------------------------------------------
# RetryPolicy jitter (repro.exec) + ResilienceConfig
# ----------------------------------------------------------------------
class TestRetryJitter:
    def test_no_key_keeps_exact_exponential_schedule(self):
        policy = RetryPolicy(
            max_retries=3, backoff_seconds=1.0, backoff_factor=2.0, jitter=0.5
        )
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 2.0
        assert policy.delay(3) == 4.0

    def test_zero_jitter_ignores_key(self):
        policy = RetryPolicy(max_retries=2, backoff_seconds=1.0, backoff_factor=2.0)
        assert policy.delay(2, key="anything") == policy.delay(2)

    def test_jitter_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_retries=2, backoff_seconds=1.0, backoff_factor=2.0, jitter=0.4
        )
        delays = {policy.delay(2, key="req-1") for _ in range(5)}
        assert len(delays) == 1  # same identity, same delay
        delay = delays.pop()
        assert 2.0 * 0.6 <= delay <= 2.0 * 1.4
        assert policy.delay(2, key="req-1") != policy.delay(2, key="req-2")

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestResilienceConfig:
    def test_defaults_are_valid(self):
        config = ResilienceConfig()
        assert config.deadline_ms is None
        assert config.retry.max_retries == 2
        assert config.fallback_explainers == ("Gradient",)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(deadline_ms=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(breaker_threshold=0)
        with pytest.raises(ValueError):
            ResilienceConfig(breaker_cooldown_ms=-1.0)

    def test_failure_kind_vocabulary(self):
        assert failure_kind(DeadlineExceeded("classify", 10.0)) == "timeout"
        assert failure_kind(InjectedFault("classify", "k", 0)) == "exception"
        assert failure_kind(ValueError("boom")) == "exception"
