"""Tests for adjacency normalization and the GCN classifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acfg import ACFG, ACFGDataset, FeatureScaler, train_test_split
from repro.gnn import GCNClassifier, evaluate_accuracy, normalized_adjacency, train_gnn
from repro.malgen import generate_corpus


class TestNormalizedAdjacency:
    def test_symmetric_output(self):
        adjacency = np.array([[0, 1, 0], [0, 0, 2], [0, 0, 0]], dtype=float)
        a_hat = normalized_adjacency(adjacency)
        np.testing.assert_allclose(a_hat, a_hat.T)

    def test_isolated_active_node_keeps_self_loop(self):
        a_hat = normalized_adjacency(np.zeros((2, 2)))
        np.testing.assert_allclose(a_hat, np.eye(2))

    def test_masked_node_fully_inert(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = 1
        mask = np.array([True, True, False])
        a_hat = normalized_adjacency(adjacency, mask)
        np.testing.assert_array_equal(a_hat[2], np.zeros(3))
        np.testing.assert_array_equal(a_hat[:, 2], np.zeros(3))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            normalized_adjacency(np.zeros((2, 3)))

    def test_rejects_bad_mask_shape(self):
        with pytest.raises(ValueError, match="mask shape"):
            normalized_adjacency(np.zeros((2, 2)), np.ones(3, dtype=bool))

    def test_call_weight_preserved(self):
        adjacency = np.array([[0, 2], [0, 0]], dtype=float)
        a_hat = normalized_adjacency(adjacency)
        # degrees: node0 = 2+1, node1 = 2+1 -> entry = 2/3
        np.testing.assert_allclose(a_hat[0, 1], 2.0 / 3.0)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=1, max_value=8), seed=st.integers(0, 1000))
    def test_property_rows_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        adjacency = rng.choice([0.0, 1.0, 2.0], size=(n, n), p=[0.7, 0.2, 0.1])
        a_hat = normalized_adjacency(adjacency)
        assert np.all(a_hat >= 0)
        assert np.all(np.isfinite(a_hat))
        # Spectral radius of the normalized matrix is at most 1.
        eigenvalues = np.linalg.eigvalsh((a_hat + a_hat.T) / 2)
        assert eigenvalues.max() <= 1.0 + 1e-9


def small_acfg(n=6, n_real=4, label=0, seed=0):
    rng = np.random.default_rng(seed)
    adjacency = np.zeros((n, n))
    for i in range(n_real - 1):
        adjacency[i, i + 1] = 1
    features = np.zeros((n, 12))
    features[:n_real] = rng.uniform(0, 1, size=(n_real, 12))
    return ACFG(adjacency, features, label=label, family="Bagle", n_real=n_real)


class TestGCNClassifier:
    def test_embedding_shape_and_nonnegative(self):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        graph = small_acfg()
        z, probs = model.forward_acfg(graph)
        assert z.shape == (graph.n, 4)
        assert (z.numpy() >= 0).all(), "ReLU embeddings must be non-negative"
        assert probs.shape == (12,)
        np.testing.assert_allclose(probs.numpy().sum(), 1.0, atol=1e-9)

    def test_padded_nodes_have_zero_embeddings(self):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        graph = small_acfg(n=6, n_real=4)
        z, _ = model.forward_acfg(graph)
        np.testing.assert_array_equal(z.numpy()[4:], np.zeros((2, 4)))

    def test_padding_does_not_change_prediction(self):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        graph = small_acfg(n=4, n_real=4)
        padded = graph.padded(16)
        np.testing.assert_allclose(
            model.predict_proba(graph), model.predict_proba(padded), atol=1e-12
        )

    def test_subgraph_proba_removed_node_equivalent_to_padding(self):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(1))
        graph = small_acfg(n=6, n_real=4)
        # Keeping all but node 3 must equal a graph where node 3 never existed.
        kept = np.array([0, 1, 2])
        probs_masked = model.subgraph_proba(graph, kept)
        reduced = ACFG(
            graph.adjacency.copy(),
            graph.features * np.isin(np.arange(6), kept)[:, None],
            label=0,
            family="Bagle",
            n_real=4,
        )
        reduced.adjacency[3, :] = 0
        reduced.adjacency[:, 3] = 0
        probs_manual = model.subgraph_proba(reduced, kept)
        np.testing.assert_allclose(probs_masked, probs_manual, atol=1e-12)

    def test_keeping_all_nodes_matches_full_prediction(self):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(2))
        graph = small_acfg(n=6, n_real=4)
        np.testing.assert_allclose(
            model.subgraph_proba(graph, np.arange(4)),
            model.predict_proba(graph),
            atol=1e-12,
        )

    def test_requires_at_least_one_layer(self):
        with pytest.raises(ValueError):
            GCNClassifier(hidden=())

    def test_state_dict_roundtrip(self):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(3))
        clone = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(99))
        graph = small_acfg()
        assert not np.allclose(model.predict_proba(graph), clone.predict_proba(graph))
        clone.load_state_dict(model.state_dict())
        np.testing.assert_allclose(
            model.predict_proba(graph), clone.predict_proba(graph)
        )


class TestTraining:
    @pytest.fixture(scope="class")
    def tiny_sets(self):
        corpus = generate_corpus(4, seed=11)
        dataset = ACFGDataset.from_corpus(corpus)
        train, test = train_test_split(dataset, 0.25, seed=0)
        scaler = FeatureScaler().fit(list(train))
        return train.scaled(scaler), test.scaled(scaler)

    def test_loss_decreases(self, tiny_sets):
        train_set, _ = tiny_sets
        model = GCNClassifier(hidden=(16, 8), rng=np.random.default_rng(0))
        history = train_gnn(model, train_set, epochs=8, batch_size=8, lr=0.01, seed=0)
        assert history.losses[-1] < history.losses[0]

    def test_accuracy_better_than_chance_after_training(self, tiny_sets):
        train_set, _ = tiny_sets
        model = GCNClassifier(hidden=(16, 8), rng=np.random.default_rng(0))
        train_gnn(model, train_set, epochs=25, batch_size=8, lr=0.01, seed=0)
        accuracy = evaluate_accuracy(model, train_set)
        assert accuracy > 3.0 / 12.0, f"train accuracy {accuracy} barely above chance"

    def test_eval_history_recorded(self, tiny_sets):
        train_set, test_set = tiny_sets
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        history = train_gnn(
            model, train_set, epochs=3, batch_size=8, eval_set=test_set, seed=0
        )
        assert len(history.accuracies) == 3

    def test_invalid_params_raise(self, tiny_sets):
        train_set, _ = tiny_sets
        model = GCNClassifier(hidden=(8, 4))
        with pytest.raises(ValueError):
            train_gnn(model, train_set, epochs=0)
