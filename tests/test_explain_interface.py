"""Tests for Explanation objects, the ladder builder, and metrics."""

import numpy as np
import pytest

from repro.acfg import ACFG
from repro.explain import (
    Explanation,
    accuracy_auc,
    fidelity_minus_acc,
    fidelity_plus_acc,
    sparsity,
    subgraph_accuracy,
    sweep_accuracy_curve,
)
from repro.explain.base import ladder_from_order, level_fractions
from repro.baselines import DegreeExplainer, RandomExplainer


def make_graph(n_real=8, n=10, label=0):
    rng = np.random.default_rng(42)
    adjacency = np.zeros((n, n))
    for i in range(n_real - 1):
        adjacency[i, i + 1] = 1
    adjacency[0, n_real - 1] = 2
    features = np.zeros((n, 12))
    features[:n_real] = rng.uniform(0, 1, (n_real, 12))
    return ACFG(adjacency, features, label=label, family="Bagle", n_real=n_real, name=f"g{label}")


class TestLevelFractions:
    def test_step_10(self):
        fractions = level_fractions(10)
        assert fractions == [i / 10 for i in range(1, 11)]

    def test_step_25(self):
        assert level_fractions(25) == [0.25, 0.5, 0.75, 1.0]

    def test_step_100(self):
        assert level_fractions(100) == [1.0]

    @pytest.mark.parametrize("bad", [0, -5, 101, 30, 7])
    def test_invalid_steps_raise(self, bad):
        with pytest.raises(ValueError):
            level_fractions(bad)


class TestLadder:
    def test_ladder_sizes_monotone(self):
        graph = make_graph()
        order = np.arange(graph.n_real)
        levels = ladder_from_order(graph, order, 20)
        sizes = [level.kept_nodes.size for level in levels]
        assert sizes == sorted(sizes)
        assert sizes[-1] == graph.n_real

    def test_ladder_nested(self):
        graph = make_graph()
        order = np.random.default_rng(0).permutation(graph.n_real)
        levels = ladder_from_order(graph, order, 10)
        for smaller, larger in zip(levels[:-1], levels[1:]):
            assert set(smaller.kept_nodes) <= set(larger.kept_nodes)

    def test_ladder_adjacency_zeroed_outside(self):
        graph = make_graph()
        order = np.arange(graph.n_real)
        levels = ladder_from_order(graph, order, 50)
        small = levels[0]
        removed = set(range(graph.n)) - set(small.kept_nodes.tolist())
        for node in removed:
            assert small.adjacency[node].sum() == 0
            assert small.adjacency[:, node].sum() == 0


class TestExplanationObject:
    def make_explanation(self):
        graph = make_graph()
        order = np.array([3, 1, 0, 2, 4, 5, 6, 7])
        return Explanation(
            graph=graph,
            explainer_name="test",
            predicted_class=0,
            node_order=order,
            levels=ladder_from_order(graph, order, 25),
        )

    def test_top_nodes(self):
        explanation = self.make_explanation()
        np.testing.assert_array_equal(explanation.top_nodes(0.25), [3, 1])
        np.testing.assert_array_equal(explanation.top_nodes(1.0), explanation.node_order)

    def test_top_nodes_at_least_one(self):
        explanation = self.make_explanation()
        assert explanation.top_nodes(0.01).size == 1

    def test_top_nodes_bad_fraction(self):
        explanation = self.make_explanation()
        with pytest.raises(ValueError):
            explanation.top_nodes(0.0)

    def test_level_at_picks_nearest(self):
        explanation = self.make_explanation()
        assert explanation.level_at(0.2).fraction == 0.25
        assert explanation.level_at(0.9).fraction == 1.0

    def test_rejects_duplicate_order(self):
        graph = make_graph()
        with pytest.raises(ValueError, match="duplicates"):
            Explanation(graph, "x", 0, np.array([0, 0, 1, 2, 3, 4, 5, 6]))

    def test_rejects_non_permutation(self):
        graph = make_graph()
        with pytest.raises(ValueError, match="permutation"):
            Explanation(graph, "x", 0, np.array([0, 1, 2]))


class TestMetrics:
    @pytest.fixture()
    def setup(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        explainer = DegreeExplainer(trained_gnn)
        explanations = [explainer.explain(g) for g in test_set.graphs[:6]]
        return trained_gnn, explanations

    def test_accuracy_in_unit_interval(self, setup):
        model, explanations = setup
        for fraction in (0.1, 0.5, 1.0):
            value = subgraph_accuracy(model, explanations, fraction)
            assert 0.0 <= value <= 1.0

    def test_full_graph_accuracy_is_one_against_prediction(self, setup):
        model, explanations = setup
        # Keeping 100% of nodes reproduces the original prediction exactly.
        assert subgraph_accuracy(model, explanations, 1.0) == 1.0

    def test_sweep_curve_shapes(self, setup):
        model, explanations = setup
        fractions, accuracies = sweep_accuracy_curve(model, explanations)
        assert fractions.shape == accuracies.shape == (10,)
        assert accuracies[-1] == 1.0

    def test_auc_bounds_and_anchor(self):
        fractions = np.array([0.5, 1.0])
        assert accuracy_auc(fractions, np.array([1.0, 1.0])) == pytest.approx(0.75)
        assert accuracy_auc(fractions, np.array([0.0, 0.0])) == 0.0

    def test_auc_rejects_empty(self):
        with pytest.raises(ValueError):
            accuracy_auc(np.array([]), np.array([]))

    def test_fidelity_minus_zero_at_full_graph(self, setup):
        model, explanations = setup
        assert fidelity_minus_acc(model, explanations, 1.0) == pytest.approx(0.0)

    def test_fidelity_plus_bounded(self, setup):
        model, explanations = setup
        value = fidelity_plus_acc(model, explanations, 0.2)
        assert -1.0 <= value <= 1.0

    def test_sparsity(self, setup):
        _, explanations = setup
        explanation = explanations[0]
        assert sparsity(explanation, 1.0) == pytest.approx(0.0)
        assert 0.0 < sparsity(explanation, 0.2) < 1.0

    def test_empty_explanations_raise(self, setup):
        model, _ = setup
        with pytest.raises(ValueError):
            subgraph_accuracy(model, [], 0.5)


class TestSimpleBaselines:
    def test_random_is_deterministic_per_graph(self, trained_gnn):
        graph = make_graph()
        explainer = RandomExplainer(trained_gnn, seed=7)
        order1, _ = explainer.rank_nodes(graph)
        order2, _ = explainer.rank_nodes(graph)
        np.testing.assert_array_equal(order1, order2)

    def test_degree_orders_by_degree(self, trained_gnn):
        graph = make_graph()
        explainer = DegreeExplainer(trained_gnn)
        order, scores = explainer.rank_nodes(graph)
        assert scores[order[0]] == scores.max()
        # Descending scores along the ordering.
        ordered = scores[order]
        assert (np.diff(ordered) <= 0).all()

    def test_explain_produces_full_ladder(self, trained_gnn):
        graph = make_graph()
        explanation = DegreeExplainer(trained_gnn).explain(graph, step_size=20)
        assert len(explanation.levels) == 5
        assert explanation.explainer_name == "Degree"
