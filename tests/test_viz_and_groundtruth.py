"""Tests for the DOT/text renderers and the ground-truth recovery metric."""

import numpy as np
import pytest

from repro.acfg import FeatureScaler, from_sample
from repro.baselines import DegreeExplainer, RandomExplainer
from repro.explain.groundtruth import mean_signature_recovery, signature_recovery
from repro.malgen import generate_corpus
from repro.viz import (
    cfg_to_dot,
    explanation_to_dot,
    render_block_listing,
    render_importance_bars,
)


@pytest.fixture(scope="module")
def sample_and_explanation(trained_gnn):
    corpus = generate_corpus(1, seed=31)
    sample = next(s for s in corpus if s.family == "Zbot")
    graph = from_sample(sample)
    scaler = FeatureScaler().fit([graph])
    explainer = DegreeExplainer(trained_gnn)
    return sample, explainer.explain(scaler.transform(graph), step_size=20)


class TestDotExport:
    def test_cfg_to_dot_structure(self, sample_and_explanation):
        sample, _ = sample_and_explanation
        dot = cfg_to_dot(sample.cfg, name="zbot")
        assert dot.startswith('digraph "zbot"')
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == len(sample.cfg.edges)
        for block in sample.cfg.blocks:
            assert f"n{block.index} [" in dot

    def test_call_edges_dashed(self, sample_and_explanation):
        sample, _ = sample_and_explanation
        dot = cfg_to_dot(sample.cfg)
        from repro.disasm import EdgeKind

        call_edges = sum(1 for _, _, k in sample.cfg.edges if k is EdgeKind.CALL)
        assert dot.count("style=dashed") == call_edges

    def test_explanation_outlines_top_nodes(self, sample_and_explanation):
        sample, explanation = sample_and_explanation
        dot = explanation_to_dot(sample.cfg, explanation, fraction=0.2)
        top = explanation.top_nodes(0.2)
        assert dot.count("color=red") == top.size

    def test_quotes_escaped(self, sample_and_explanation):
        sample, _ = sample_and_explanation
        dot = cfg_to_dot(sample.cfg, name='has "quotes"')
        assert '\\"quotes\\"' in dot


class TestTextRendering:
    def test_block_listing_shows_top_blocks(self, sample_and_explanation):
        sample, explanation = sample_and_explanation
        text = render_block_listing(sample.cfg, explanation, top_k=3)
        assert text.count("#") >= 3
        first = int(explanation.node_order[0])
        assert str(sample.cfg.blocks[first].instructions[0]) in text

    def test_importance_bars(self, sample_and_explanation):
        _, explanation = sample_and_explanation
        text = render_importance_bars(explanation, top_k=5)
        assert len(text.splitlines()) == 5
        assert "|" in text

    def test_bars_require_scores(self, sample_and_explanation):
        _, explanation = sample_and_explanation
        from dataclasses import replace

        stripped = replace(explanation, node_scores=None)
        with pytest.raises(ValueError, match="no scores"):
            render_importance_bars(stripped)


class TestSignatureRecovery:
    def make_pairs(self, trained_gnn, explainer_cls, count=6):
        corpus = [s for s in generate_corpus(1, seed=41) if s.family != "Benign"]
        graphs = [from_sample(s) for s in corpus]
        scaler = FeatureScaler().fit(graphs)
        explainer = explainer_cls(trained_gnn)
        pairs = []
        for sample, graph in zip(corpus[:count], graphs[:count]):
            pairs.append((sample, explainer.explain(scaler.transform(graph))))
        return pairs

    def test_recovery_bounds(self, trained_gnn):
        pairs = self.make_pairs(trained_gnn, DegreeExplainer)
        for sample, explanation in pairs:
            result = signature_recovery(sample, explanation, fraction=0.2)
            assert 0.0 <= result.precision <= 1.0
            assert 0.0 <= result.recall <= 1.0 or np.isnan(result.recall)

    def test_full_fraction_has_full_recall(self, trained_gnn):
        pairs = self.make_pairs(trained_gnn, RandomExplainer, count=3)
        for sample, explanation in pairs:
            result = signature_recovery(sample, explanation, fraction=1.0)
            assert result.recall == pytest.approx(1.0)

    def test_mean_recovery_aggregates(self, trained_gnn):
        pairs = self.make_pairs(trained_gnn, RandomExplainer)
        mean = mean_signature_recovery(pairs, fraction=0.2)
        assert 0.0 <= mean.precision <= 1.0
        assert mean.signature_total > 0

    def test_empty_pairs_raise(self):
        with pytest.raises(ValueError):
            mean_signature_recovery([])

    def test_f1_zero_when_no_overlap(self):
        from repro.explain.groundtruth import SignatureRecovery

        assert SignatureRecovery(0.0, 0.0, 5, 5).f1 == 0.0
        assert SignatureRecovery(0.5, 0.5, 5, 5).f1 == pytest.approx(0.5)
