"""Tests for the static-analysis layer (repro.staticcheck).

Covers the dominator/dataflow analyses, the CFG/ACFG invariant
verifier (clean corpora verify clean; each seeded defect triggers
exactly its finding kind), and the corpus-level strict/warn gate.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.acfg import ACFGDataset, from_sample
from repro.disasm import ProgramBuilder, build_cfg
from repro.disasm.cfg import CFG, BasicBlock, EdgeKind
from repro.malgen import generate_corpus
from repro.malgen.corpus import LabeledSample, block_motif_tags
from repro.staticcheck import (
    CorpusVerificationError,
    FindingKind,
    Severity,
    dead_stores,
    def_use,
    dominator_tree,
    liveness,
    natural_loops,
    reaching_definitions,
    unreachable_blocks,
    verify_acfg,
    verify_cfg,
    verify_corpus,
    verify_sample,
)


def build(emit, name="probe"):
    builder = ProgramBuilder(name)
    emit(builder)
    program = builder.build()
    return program, build_cfg(program)


def diamond():
    """cmp/je diamond: b0 -> {b1, b2} -> b3."""

    def emit(b):
        b.emit("cmp", "eax", "0")
        b.emit("je", "l_else")
        b.emit("inc", "eax")
        b.emit("jmp", "l_end")
        b.label("l_else")
        b.emit("dec", "eax")
        b.label("l_end")
        b.emit("ret")

    return build(emit)


def sample_of(program, cfg, family="Benign", label=0):
    return LabeledSample(
        program=program,
        cfg=cfg,
        family=family,
        label=label,
        motif_spans=[],
        block_tags=block_motif_tags(cfg, []),
    )


class TestDominators:
    def test_diamond_idoms(self):
        _, cfg = diamond()
        tree = dominator_tree(cfg)
        assert tree.idom[0] == 0
        assert tree.idom[1] == 0
        assert tree.idom[2] == 0
        assert tree.idom[3] == 0  # join point is dominated by the branch

    def test_dominates_is_reflexive_and_transitive(self):
        _, cfg = diamond()
        tree = dominator_tree(cfg)
        assert tree.dominates(0, 3)
        assert tree.dominates(2, 2)
        assert not tree.dominates(1, 3)  # the else path bypasses b1

    def test_dominators_chain_ends_at_entry(self):
        _, cfg = diamond()
        assert dominator_tree(cfg).dominators(3) == [3, 0]

    def test_unreachable_blocks_excluded(self):
        def emit(b):
            b.emit("jmp", "end")
            b.emit("nop")  # orphan: jumped over, no label
            b.label("end")
            b.emit("ret")

        _, cfg = build(emit)
        tree = dominator_tree(cfg)
        assert 1 not in tree.reachable
        with pytest.raises(KeyError):
            tree.dominators(1)

    def test_natural_loop_single_block(self):
        def emit(b):
            b.emit("mov", "ecx", "5")
            b.label("top")
            b.emit("dec", "ecx")
            b.emit("jnz", "top")
            b.emit("ret")

        _, cfg = build(emit)
        loops = natural_loops(cfg)
        assert len(loops) == 1
        assert loops[0].header == 1
        assert loops[0].body == frozenset({1})

    def test_natural_loop_multi_block_body(self):
        def emit(b):
            b.label("top")
            b.emit("cmp", "eax", "0")
            b.emit("je", "skip")
            b.emit("dec", "eax")
            b.label("skip")
            b.emit("cmp", "ecx", "0")
            b.emit("jnz", "top")
            b.emit("ret")

        _, cfg = build(emit)
        loops = natural_loops(cfg)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == 0
        assert len(loop.body) >= 3  # header, dec block, latch

    def test_acyclic_graph_has_no_loops(self):
        _, cfg = diamond()
        assert natural_loops(cfg) == []


class TestMultiExitAndIrreducible:
    """The PR-6 additions: postdominators, edge classification, typed errors."""

    def multi_exit(self):
        def emit(b):
            b.emit("cmp", "eax", "0")
            b.emit("je", "l_other")
            b.emit("ret")
            b.label("l_other")
            b.emit("ret")

        return build(emit)

    def test_postdominators_handle_multiple_exits(self):
        from repro.staticcheck import VIRTUAL_EXIT, postdominator_tree

        _, cfg = self.multi_exit()
        tree = postdominator_tree(cfg)
        # Both ret blocks postdominate only themselves; the branch block
        # is immediately postdominated by the virtual exit, not by
        # either real ret.
        assert tree.idom[0] == VIRTUAL_EXIT
        assert tree.idom[1] == VIRTUAL_EXIT
        assert tree.idom[2] == VIRTUAL_EXIT

    def test_exitless_graph_raises_typed_error(self):
        from repro.staticcheck import AnalysisError, ExitlessGraphError, postdominator_tree

        def emit(b):
            b.label("spin")
            b.emit("jmp", "spin")

        _, cfg = build(emit)
        with pytest.raises(ExitlessGraphError):
            postdominator_tree(cfg)
        assert issubclass(ExitlessGraphError, AnalysisError)
        assert issubclass(AnalysisError, ValueError)

    def test_retreating_edges_on_a_loop(self):
        from repro.staticcheck import retreating_edges

        def emit(b):
            b.emit("mov", "ecx", "5")
            b.label("top")
            b.emit("dec", "ecx")
            b.emit("jnz", "top")
            b.emit("ret")

        _, cfg = build(emit)
        assert retreating_edges(cfg) == [(1, 1)]

    def test_acyclic_graph_has_no_retreating_edges(self):
        from repro.staticcheck import retreating_edges

        _, cfg = diamond()
        assert retreating_edges(cfg) == []

    def test_reducible_loop_has_no_irreducible_edges(self):
        from repro.staticcheck import irreducible_edges

        def emit(b):
            b.label("top")
            b.emit("dec", "ecx")
            b.emit("jnz", "top")
            b.emit("ret")

        _, cfg = build(emit)
        assert irreducible_edges(cfg) == []

    def test_two_entry_cycle_is_irreducible(self):
        from repro.staticcheck import irreducible_edges, retreating_edges

        # entry -> {A, B}; A -> B; B -> A: a cycle neither member
        # dominates, i.e. a multi-entry (irreducible) loop.
        def emit(b):
            b.emit("cmp", "eax", "0")
            b.emit("je", "l_b")
            b.label("l_a")
            b.emit("inc", "eax")
            b.emit("jmp", "l_b")
            b.label("l_b")
            b.emit("dec", "eax")
            b.emit("jmp", "l_a")

        _, cfg = build(emit)
        retreating = retreating_edges(cfg)
        irreducible = irreducible_edges(cfg)
        assert irreducible  # the cycle-closing edge is not a back edge
        assert set(irreducible) <= set(retreating)

    def test_dominator_tree_from_successors_matches_cfg_path(self):
        from repro.staticcheck import dominator_tree_from_successors

        _, cfg = diamond()
        successors = {b.index: [] for b in cfg.blocks}
        for source, target, _ in cfg.edges:
            if target not in successors[source]:
                successors[source].append(target)
        tree = dominator_tree_from_successors(successors, entry=0)
        reference = dominator_tree(cfg)
        assert tree.idom == reference.idom

    def test_from_successors_missing_entry_is_typed(self):
        from repro.staticcheck import EntryNotFoundError, dominator_tree_from_successors

        with pytest.raises(EntryNotFoundError):
            dominator_tree_from_successors({1: []}, entry=0)


class TestDefUse:
    @pytest.mark.parametrize(
        "mnemonic,operands,uses,defs",
        [
            ("mov", ("eax", "ebx"), {"ebx"}, {"eax"}),
            ("mov", ("al", "bl"), {"ebx"}, {"eax"}),  # sub-register aliasing
            ("mov", ("[ebp+8]", "eax"), {"ebp", "eax"}, set()),
            ("xor", ("eax", "eax"), set(), {"eax"}),  # self-zeroing idiom
            ("sub", ("ecx", "ecx"), set(), {"ecx"}),
            ("xor", ("eax", "ecx"), {"eax", "ecx"}, {"eax"}),
            ("add", ("eax", "42"), {"eax"}, {"eax"}),
            ("inc", ("esi",), {"esi"}, {"esi"}),
            ("pop", ("ecx",), {"esp"}, {"ecx", "esp"}),
            ("push", ("edi",), {"esp", "edi"}, {"esp"}),
            ("cmp", ("eax", "ebx"), {"eax", "ebx"}, set()),
            ("call", ("ds:CreateThread",), {"esp"}, set()),
            ("jmp", ("loc_1",), set(), set()),
            ("cdq", (), {"eax"}, {"edx"}),
            ("mul", ("ecx",), {"eax", "ecx"}, {"eax", "edx"}),
            ("nop", (), set(), set()),
        ],
    )
    def test_def_use_table(self, mnemonic, operands, uses, defs):
        from repro.disasm import Instruction

        result = def_use(Instruction(mnemonic, operands))
        assert set(result.uses) == uses
        assert set(result.defs) == defs

    def test_ret_keeps_return_value_live(self):
        from repro.disasm import Instruction

        assert "eax" in def_use(Instruction("ret")).uses


class TestLiveness:
    def test_straight_line_liveness(self):
        def emit(b):
            b.emit("mov", "eax", "ebx")
            b.emit("mov", "[ecx]", "eax")
            b.emit("ret")

        _, cfg = build(emit)
        live = liveness(cfg)
        assert "ebx" in live.live_in[0]
        assert "ecx" in live.live_in[0]

    def test_branch_merges_liveness(self):
        _, cfg = diamond()
        live = liveness(cfg)
        # eax flows through both arms into the ret.
        assert "eax" in live.live_in[0]
        assert "eax" in live.live_out[1]
        assert "eax" in live.live_out[2]

    def test_dead_store_intra_block(self):
        def emit(b):
            b.emit("mov", "eax", "5")
            b.emit("mov", "eax", "ebx")  # kills the previous store
            b.emit("mov", "[ecx]", "eax")
            b.emit("ret")

        _, cfg = build(emit)
        stores = dead_stores(cfg)
        assert [(s.block_index, s.offset, s.register) for s in stores] == [(0, 0, "eax")]

    def test_dead_store_across_blocks(self):
        def emit(b):
            b.emit("xor", "eax", "ecx")
            b.emit("jmp", "next")
            b.label("next")
            b.emit("mov", "eax", "ebx")
            b.emit("mov", "[edx]", "eax")
            b.emit("ret")

        _, cfg = build(emit)
        assert [(s.block_index, s.offset) for s in dead_stores(cfg)] == [(0, 0)]

    def test_zeroing_return_value_is_live(self):
        def emit(b):
            b.emit("xor", "eax", "eax")
            b.emit("ret")

        _, cfg = build(emit)
        assert dead_stores(cfg) == []

    def test_callee_register_read_keeps_caller_store_live(self):
        def emit(b):
            b.emit("mov", "eax", "7")
            b.emit("call", "helper")
            b.emit("ret")
            b.label("helper")
            b.emit("push", "eax")  # helper reads eax set by the caller
            b.emit("pop", "ecx")
            b.emit("ret")

        _, cfg = build(emit)
        assert all(s.register != "eax" for s in dead_stores(cfg))


class TestReachingDefinitions:
    def test_definitions_merge_at_join(self):
        _, cfg = diamond()
        reach = reaching_definitions(cfg)
        # Both arms write eax (inc / dec); both defs reach the join block.
        join_defs = reach.definitions_of(3, "eax")
        assert {d.block for d in join_defs} == {1, 2}

    def test_redefinition_kills_upstream_def(self):
        def emit(b):
            b.emit("mov", "eax", "1")
            b.emit("jmp", "next")
            b.label("next")
            b.emit("mov", "eax", "2")
            b.emit("jmp", "last")
            b.label("last")
            b.emit("mov", "[ecx]", "eax")
            b.emit("ret")

        _, cfg = build(emit)
        reach = reaching_definitions(cfg)
        last_defs = reach.definitions_of(2, "eax")
        assert {d.block for d in last_defs} == {1}


class TestVerifierCleanGraphs:
    def test_diamond_verifies_clean(self):
        program, cfg = diamond()
        errors = [
            f for f in verify_cfg(cfg, program) if f.severity >= Severity.ERROR
        ]
        assert errors == []

    def test_every_generated_program_verifies_clean_strict(self):
        # Property-style sweep: several seeds, every family, strict mode.
        for seed in (0, 123):
            corpus = generate_corpus(2, seed=seed)
            report = verify_corpus(corpus, mode="strict")
            assert report.ok

    def test_orphan_block_is_flagged_unreachable(self):
        def emit(b):
            b.emit("jmp", "end")
            b.emit("nop")  # orphan block: no label, jumped over
            b.label("end")
            b.emit("ret")

        program, cfg = build(emit)
        findings = verify_cfg(cfg, program)
        kinds = {f.kind for f in findings}
        assert FindingKind.UNREACHABLE_BLOCK in kinds
        [finding] = [f for f in findings if f.kind is FindingKind.UNREACHABLE_BLOCK]
        assert finding.block_index == 1
        assert finding.severity == Severity.WARNING  # legit in malware


class TestVerifierSeededDefects:
    """Each hand-broken CFG/ACFG triggers exactly its finding kind."""

    def error_kinds(self, findings):
        return {f.kind for f in findings if f.severity >= Severity.ERROR}

    def test_partition_gap_detected(self):
        program, cfg = diamond()
        # Shift one block's start: blocks no longer tile the program.
        broken = CFG(
            [
                b if b.index != 1 else replace(b, start=b.start + 1)
                for b in cfg.blocks
            ],
            cfg.edges,
            cfg.name,
        )
        assert FindingKind.BLOCK_PARTITION in self.error_kinds(
            verify_cfg(broken, program, dataflow=False)
        )

    def test_leader_mismatch_detected(self):
        program, cfg = diamond()
        # Merge everything into one giant block: labels/branch targets
        # no longer start blocks.
        merged = CFG(
            [BasicBlock(0, 0, tuple(program.instructions))], [], program.name
        )
        assert FindingKind.LEADER_MISMATCH in self.error_kinds(
            verify_cfg(merged, program, dataflow=False)
        )

    def test_terminator_edge_mismatch_detected(self):
        program, cfg = diamond()
        # A ret block must not have out-edges.
        broken = CFG(cfg.blocks, cfg.edges + [(3, 0, EdgeKind.JUMP)], cfg.name)
        assert FindingKind.TERMINATOR_EDGE in self.error_kinds(
            verify_cfg(broken, program, dataflow=False)
        )

    def test_dangling_edge_detected(self):
        program, cfg = diamond()
        broken = CFG(cfg.blocks, cfg.edges + [(0, 99, EdgeKind.JUMP)], cfg.name)
        assert FindingKind.EDGE_ENDPOINT in self.error_kinds(
            verify_cfg(broken, program, dataflow=False)
        )

    def test_fallthrough_to_non_adjacent_block_detected(self):
        program, cfg = diamond()
        edges = [
            (s, t, k)
            if not (s == 0 and k is EdgeKind.FALLTHROUGH)
            else (0, 3, EdgeKind.FALLTHROUGH)
            for s, t, k in cfg.edges
        ]
        assert FindingKind.FALLTHROUGH_TARGET in self.error_kinds(
            verify_cfg(CFG(cfg.blocks, edges, cfg.name), program, dataflow=False)
        )

    def test_wrong_edge_weight_detected(self):
        program, cfg = diamond()
        acfg = from_sample(sample_of(program, cfg))
        jump_edges = np.argwhere(acfg.adjacency == 1.0)
        i, j = jump_edges[0]
        acfg.adjacency[i, j] = 2.0  # a jump pretending to be a call
        findings = verify_acfg(acfg, cfg, program, dataflow=False)
        assert FindingKind.EDGE_WEIGHT in self.error_kinds(findings)

    def test_out_of_range_weight_detected(self):
        program, cfg = diamond()
        acfg = from_sample(sample_of(program, cfg))
        acfg.adjacency[0, 1] = 3.0
        assert FindingKind.EDGE_WEIGHT in self.error_kinds(
            verify_acfg(acfg, cfg, program, dataflow=False)
        )

    def test_phantom_edge_detected(self):
        program, cfg = diamond()
        acfg = from_sample(sample_of(program, cfg))
        assert acfg.adjacency[3, 0] == 0.0
        acfg.adjacency[3, 0] = 1.0
        assert FindingKind.ADJACENCY_MISMATCH in self.error_kinds(
            verify_acfg(acfg, cfg, program, dataflow=False)
        )

    def test_stale_feature_vector_detected(self):
        program, cfg = diamond()
        acfg = from_sample(sample_of(program, cfg))
        acfg.features[2, 0] += 5.0  # numeric_constants no longer matches
        findings = verify_acfg(acfg, cfg, program, dataflow=False)
        stale = [f for f in findings if f.kind is FindingKind.FEATURE_MISMATCH]
        assert len(stale) == 1
        assert stale[0].block_index == 2
        assert "numeric_constants" in stale[0].message

    def test_nonzero_padding_detected(self):
        program, cfg = diamond()
        acfg = from_sample(sample_of(program, cfg), pad_to=cfg.node_count + 2)
        acfg.features[cfg.node_count, 0] = 1.0
        assert FindingKind.PADDING_NONZERO in self.error_kinds(
            verify_acfg(acfg, cfg, program, dataflow=False)
        )

    def test_node_count_mismatch_detected(self):
        program, cfg = diamond()
        acfg = from_sample(sample_of(program, cfg))
        acfg.n_real = cfg.node_count - 1
        assert FindingKind.NODE_COUNT_MISMATCH in self.error_kinds(
            verify_acfg(acfg, cfg, program, dataflow=False)
        )


class TestCorpusGate:
    def broken_corpus(self):
        corpus = generate_corpus(1, seed=3)
        victim = corpus[0]
        victim.cfg.edges.append((victim.cfg.node_count - 1, 0, EdgeKind.JUMP))
        return corpus

    def test_strict_mode_raises_with_report(self):
        with pytest.raises(CorpusVerificationError) as excinfo:
            verify_corpus(self.broken_corpus(), mode="strict")
        report = excinfo.value.report
        assert not report.ok
        assert report.errors

    def test_warn_mode_warns_and_returns_report(self):
        with pytest.warns(UserWarning):
            report = verify_corpus(self.broken_corpus(), mode="warn")
        assert not report.ok

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            verify_corpus([], mode="loose")

    def test_report_summary_mentions_counts(self):
        corpus = generate_corpus(1, seed=4)
        report = verify_corpus(corpus, mode="strict")
        assert report.ok
        assert "0 errors" in report.summary()

    def test_verify_sample_clean_on_generated(self):
        sample = generate_corpus(1, seed=9)[0]
        errors = [
            f for f in verify_sample(sample) if f.severity >= Severity.ERROR
        ]
        assert errors == []

    def test_dataset_from_corpus_strict_gate(self):
        corpus = generate_corpus(2, seed=5)
        dataset = ACFGDataset.from_corpus(corpus, verify="strict")
        assert len(dataset) == len(corpus)

    def test_dataset_from_corpus_strict_gate_raises_on_defect(self):
        with pytest.raises(CorpusVerificationError):
            ACFGDataset.from_corpus(self.broken_corpus(), verify="strict")

    def test_pipeline_config_rejects_bad_verify_mode(self):
        from repro.eval import ExperimentConfig

        with pytest.raises(ValueError):
            ExperimentConfig(verify_mode="loose")
