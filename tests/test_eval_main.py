"""Tests for the ``python -m repro.eval`` entry point's argument handling."""

import sys

import pytest

from repro.eval.__main__ import parse_args


class TestParseArgs:
    def run(self, argv):
        old = sys.argv
        sys.argv = ["repro.eval"] + argv
        try:
            return parse_args()
        finally:
            sys.argv = old

    def test_defaults(self):
        args = self.run([])
        assert not args.quick
        assert args.samples is None
        assert args.seed == 0

    def test_quick_flag(self):
        assert self.run(["--quick"]).quick

    def test_samples_and_seed(self):
        args = self.run(["--samples", "4", "--seed", "7"])
        assert args.samples == 4
        assert args.seed == 7

    def test_rejects_unknown_flag(self):
        with pytest.raises(SystemExit):
            self.run(["--bogus"])
