"""Tests for the DGCNN-style (MAGIC-family) classifier."""

import numpy as np
import pytest

from repro.acfg import ACFG
from repro.core import CFGExplainerModel, interpret, train_cfgexplainer
from repro.gnn import DGCNNClassifier, evaluate_accuracy, train_gnn


def small_acfg(n=8, n_real=6, label=0, seed=0):
    rng = np.random.default_rng(seed)
    adjacency = np.zeros((n, n))
    for i in range(n_real - 1):
        adjacency[i, i + 1] = 1
    adjacency[0, 2] = 2
    features = np.zeros((n, 12))
    features[:n_real] = rng.uniform(0, 1, (n_real, 12))
    return ACFG(adjacency, features, label=label, family="Bagle", n_real=n_real)


class TestDGCNNModel:
    def test_embedding_shape_is_channel_concat(self):
        model = DGCNNClassifier(conv_channels=(8, 8, 4), sort_k=4,
                                rng=np.random.default_rng(0))
        graph = small_acfg()
        z, probs = model.forward_acfg(graph)
        assert z.shape == (graph.n, 8 + 8 + 4)
        assert probs.shape == (12,)
        np.testing.assert_allclose(probs.numpy().sum(), 1.0, atol=1e-9)

    def test_embeddings_nonnegative(self):
        model = DGCNNClassifier(conv_channels=(8, 4), sort_k=4,
                                rng=np.random.default_rng(1))
        graph = small_acfg()
        z, _ = model.forward_acfg(graph)
        assert (z.numpy() >= 0).all()

    def test_padded_rows_zero(self):
        model = DGCNNClassifier(conv_channels=(8, 4), sort_k=4,
                                rng=np.random.default_rng(1))
        graph = small_acfg(n=8, n_real=6)
        z, _ = model.forward_acfg(graph)
        np.testing.assert_array_equal(z.numpy()[6:], np.zeros((2, 12)))

    def test_padding_invariance(self):
        model = DGCNNClassifier(conv_channels=(8, 4), sort_k=4,
                                rng=np.random.default_rng(2))
        graph = small_acfg(n=6, n_real=6)
        np.testing.assert_allclose(
            model.predict_proba(graph),
            model.predict_proba(graph.padded(12)),
            atol=1e-12,
        )

    def test_small_graph_padded_to_sort_k(self):
        model = DGCNNClassifier(conv_channels=(4,), sort_k=10,
                                rng=np.random.default_rng(3))
        graph = small_acfg(n=4, n_real=3)
        probs = model.predict_proba(graph)
        assert np.isfinite(probs).all()

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            DGCNNClassifier(conv_channels=())
        with pytest.raises(ValueError):
            DGCNNClassifier(sort_k=0)


class TestDGCNNTrainingAndExplaining:
    @pytest.fixture(scope="class")
    def trained_dgcnn(self, small_dataset):
        train_set, _ = small_dataset
        model = DGCNNClassifier(conv_channels=(16, 8), sort_k=12,
                                rng=np.random.default_rng(0))
        train_gnn(model, train_set, epochs=30, batch_size=16, lr=0.005, seed=0)
        return model

    def test_trains_above_chance(self, trained_dgcnn, small_dataset):
        train_set, _ = small_dataset
        assert evaluate_accuracy(trained_dgcnn, train_set) > 2.0 / 12.0

    def test_cfgexplainer_is_model_agnostic(self, trained_dgcnn, small_dataset):
        """Θ trains against DGCNN embeddings and Algorithm 2 runs unchanged."""
        train_set, test_set = small_dataset
        theta = CFGExplainerModel(
            trained_dgcnn.embedding_size, 12, rng=np.random.default_rng(4)
        )
        history = train_cfgexplainer(
            theta, trained_dgcnn, train_set, num_epochs=15, minibatch_size=8, seed=0
        )
        assert all(np.isfinite(history.losses))
        explanation = interpret(theta, trained_dgcnn, test_set.graphs[0], step_size=20)
        graph = test_set.graphs[0]
        assert sorted(explanation.node_order.tolist()) == list(range(graph.n_real))

    def test_baselines_accept_dgcnn(self, trained_dgcnn, small_dataset):
        from repro.baselines import GNNExplainerBaseline, SubgraphXBaseline

        _, test_set = small_dataset
        graph = test_set.graphs[1]
        for explainer in (
            GNNExplainerBaseline(trained_dgcnn, epochs=3),
            SubgraphXBaseline(trained_dgcnn, mcts_iterations=3, shapley_samples=2),
        ):
            explanation = explainer.explain(graph, step_size=50)
            assert sorted(explanation.node_order.tolist()) == list(range(graph.n_real))
