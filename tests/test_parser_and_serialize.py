"""Tests for the assembly parser and model checkpointing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disasm import build_cfg
from repro.disasm.parser import ParseError, parse_program
from repro.gnn import GCNClassifier
from repro.malgen import FAMILIES, generate_program
from repro.nn.serialize import load_module_into, save_module


class TestParseProgram:
    def test_basic_listing(self):
        program = parse_program(
            """
            mov eax, 1
            cmp eax, 0
            je done
            inc eax
            done:
            ret
            """
        )
        assert len(program) == 5
        assert program.labels["done"] == 4
        cfg = build_cfg(program)
        assert cfg.node_count == 3

    def test_comments_stripped(self):
        program = parse_program("mov eax, 1 ; set accumulator\n; full line comment\nret")
        assert len(program) == 2

    def test_quoted_string_with_comma(self):
        program = parse_program("push 'hello, world'\nret")
        assert program.instructions[0].operands == ("'hello, world'",)

    def test_memory_operand_with_comma_free_brackets(self):
        program = parse_program("mov eax, [ebp+8]\nret")
        assert program.instructions[0].operands == ("eax", "[ebp+8]")

    def test_duplicate_label_raises(self):
        with pytest.raises(ParseError, match="duplicate label"):
            parse_program("x:\nnop\nx:\nret")

    def test_empty_label_raises(self):
        with pytest.raises(ParseError, match="empty label"):
            parse_program(" :\nret")

    def test_unknown_mnemonic_reports_line(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_program("nop\nfrobnicate eax\nret")

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse_program("push 'oops\nret")

    def test_trailing_label_anchored(self):
        program = parse_program("jmp end\nend:")
        assert program.instructions[-1].is_return

    def test_case_insensitive_mnemonics(self):
        program = parse_program("MOV EAX, 1\nRET")
        assert program.instructions[0].mnemonic == "mov"

    @settings(max_examples=15, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    def test_property_roundtrip_generated_programs(self, family, seed):
        """to_text() output parses back to an equivalent program."""
        program, _ = generate_program(family, seed)
        parsed = parse_program(program.to_text(), name=program.name)
        assert len(parsed) == len(program)
        assert parsed.labels == program.labels
        for original, reparsed in zip(program.instructions, parsed.instructions):
            assert original == reparsed
        original_cfg = build_cfg(program)
        reparsed_cfg = build_cfg(parsed)
        np.testing.assert_array_equal(
            original_cfg.adjacency_matrix(), reparsed_cfg.adjacency_matrix()
        )


class TestSerialize:
    def test_roundtrip_preserves_behaviour(self, tmp_path):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        save_module(model, tmp_path / "gnn.npz", config={"hidden": [8, 4]})

        clone = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(9))
        config = load_module_into(clone, tmp_path / "gnn.npz")
        assert config == {"hidden": [8, 4]}
        for a, b in zip(model.parameters(), clone.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_suffix_added_on_load(self, tmp_path):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        save_module(model, tmp_path / "ckpt.npz")
        clone = GCNClassifier(hidden=(8, 4))
        load_module_into(clone, tmp_path / "ckpt")  # no suffix

    def test_architecture_mismatch_raises(self, tmp_path):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        save_module(model, tmp_path / "gnn.npz")
        wrong_depth = GCNClassifier(hidden=(8, 4, 2))
        with pytest.raises(ValueError, match="parameters"):
            load_module_into(wrong_depth, tmp_path / "gnn.npz")

    def test_shape_mismatch_raises(self, tmp_path):
        model = GCNClassifier(hidden=(8, 4), rng=np.random.default_rng(0))
        save_module(model, tmp_path / "gnn.npz")
        wrong_width = GCNClassifier(hidden=(8, 6))
        with pytest.raises(ValueError, match="shape"):
            load_module_into(wrong_width, tmp_path / "gnn.npz")

    def test_explainer_model_roundtrip(self, tmp_path):
        from repro.core import CFGExplainerModel

        theta = CFGExplainerModel(16, 12, rng=np.random.default_rng(1))
        save_module(theta, tmp_path / "theta.npz")
        clone = CFGExplainerModel(16, 12, rng=np.random.default_rng(2))
        load_module_into(clone, tmp_path / "theta.npz")
        z = np.abs(np.random.default_rng(3).normal(size=(5, 16)))
        from repro.nn import Tensor

        np.testing.assert_allclose(
            theta.scorer(Tensor(z)).numpy(), clone.scorer(Tensor(z)).numpy()
        )
