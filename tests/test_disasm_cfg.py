"""Unit tests for program building and CFG recovery."""

import numpy as np
import pytest

from repro.disasm import EdgeKind, Program, ProgramBuilder, build_cfg
from repro.disasm.instruction import Instruction


def straight_line_program():
    b = ProgramBuilder("straight")
    b.emit("mov", "eax", "1")
    b.emit("add", "eax", "2")
    b.emit("ret")
    return b.build()


def branch_program():
    """if (eax == 0) { eax++ } ; return — the classic diamond-less branch."""
    b = ProgramBuilder("branch")
    b.emit("cmp", "eax", "0")
    b.emit("je", "done")
    b.emit("inc", "eax")
    b.label("done")
    b.emit("ret")
    return b.build()


def loop_program():
    b = ProgramBuilder("loop")
    b.emit("mov", "ecx", "10")
    b.label("top")
    b.emit("dec", "ecx")
    b.emit("cmp", "ecx", "0")
    b.emit("jne", "top")
    b.emit("ret")
    return b.build()


def call_program():
    b = ProgramBuilder("calls")
    b.emit("call", "helper")
    b.emit("mov", "ebx", "eax")
    b.emit("ret")
    b.label("helper")
    b.emit("mov", "eax", "7")
    b.emit("ret")
    return b.build()


class TestProgramBuilder:
    def test_builds_program_with_labels(self):
        program = branch_program()
        assert len(program) == 4
        assert program.labels["done"] == 3

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ValueError, match="defined twice"):
            b.label("x")

    def test_unresolved_target_raises(self):
        b = ProgramBuilder()
        b.emit("jmp", "nowhere")
        with pytest.raises(ValueError, match="never defined"):
            b.build()

    def test_trailing_label_gets_terminator(self):
        b = ProgramBuilder()
        b.emit("jmp", "end")
        b.label("end")
        program = b.build()
        assert program.instructions[-1].is_return

    def test_fresh_labels_unique(self):
        b = ProgramBuilder()
        names = {b.fresh_label() for _ in range(100)}
        assert len(names) == 100

    def test_label_out_of_range_raises(self):
        with pytest.raises(ValueError, match="outside the program"):
            Program([Instruction("ret")], {"bad": 5})

    def test_to_text_includes_labels(self):
        text = branch_program().to_text()
        assert "done:" in text
        assert "je done" in text


class TestCfgConstruction:
    def test_straight_line_is_one_block(self):
        cfg = build_cfg(straight_line_program())
        assert cfg.node_count == 1
        assert cfg.edge_count == 0
        assert len(cfg.blocks[0]) == 3

    def test_branch_blocks_and_edges(self):
        cfg = build_cfg(branch_program())
        # blocks: [cmp,je] [inc] [ret]
        assert cfg.node_count == 3
        kinds = {(s, t): k for s, t, k in cfg.edges}
        assert kinds[(0, 2)] is EdgeKind.JUMP
        assert kinds[(0, 1)] is EdgeKind.FALLTHROUGH
        assert kinds[(1, 2)] is EdgeKind.FALLTHROUGH

    def test_loop_has_back_edge(self):
        cfg = build_cfg(loop_program())
        # blocks: [mov] [dec,cmp,jne] [ret]
        assert cfg.node_count == 3
        assert (1, 1, EdgeKind.JUMP) in cfg.edges

    def test_call_edge_has_weight_two(self):
        cfg = build_cfg(call_program())
        matrix = cfg.adjacency_matrix()
        # block 0 = [call helper]; helper entry is block 3 ([mov eax,7; ...]).
        call_edges = [(s, t) for s, t, k in cfg.edges if k is EdgeKind.CALL]
        assert len(call_edges) == 1
        source, target = call_edges[0]
        assert matrix[source, target] == 2

    def test_call_also_falls_through(self):
        cfg = build_cfg(call_program())
        fall = [(s, t) for s, t, k in cfg.edges if k is EdgeKind.FALLTHROUGH]
        assert (0, 1) in fall

    def test_api_call_does_not_split_block(self):
        b = ProgramBuilder()
        b.emit("call", "ds:Sleep")
        b.emit("mov", "eax", "[ebp+8]")
        b.emit("ret")
        cfg = build_cfg(b.build())
        assert cfg.node_count == 1

    def test_return_has_no_successors(self):
        cfg = build_cfg(branch_program())
        last = cfg.node_count - 1
        assert cfg.successors(last) == []

    def test_adjacency_values_in_paper_domain(self):
        for program in (branch_program(), loop_program(), call_program()):
            matrix = build_cfg(program).adjacency_matrix()
            assert set(np.unique(matrix)) <= {0, 1, 2}

    def test_empty_program(self):
        cfg = build_cfg(Program([], {}))
        assert cfg.node_count == 0
        assert cfg.adjacency_matrix().shape == (0, 0)

    def test_unconditional_jump_has_no_fallthrough(self):
        b = ProgramBuilder()
        b.emit("jmp", "end")
        b.emit("mov", "eax", "1")  # dead code
        b.label("end")
        b.emit("ret")
        cfg = build_cfg(b.build())
        kinds = {(s, t): k for s, t, k in cfg.edges}
        assert all(k is not EdgeKind.FALLTHROUGH or s != 0 for (s, t), k in kinds.items())

    def test_to_networkx_preserves_structure(self):
        cfg = build_cfg(loop_program())
        graph = cfg.to_networkx()
        assert graph.number_of_nodes() == cfg.node_count
        assert graph.number_of_edges() == len({(s, t) for s, t, _ in cfg.edges})
        assert graph.has_edge(1, 1)

    def test_predecessors(self):
        cfg = build_cfg(branch_program())
        assert sorted(cfg.predecessors(2)) == [0, 1]

    def test_block_labels_attached(self):
        cfg = build_cfg(branch_program())
        labelled = [b for b in cfg.blocks if "done" in b.labels]
        assert len(labelled) == 1
