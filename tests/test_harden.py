"""Hostile-input hardening: sanitizer, quarantine policy, guards, fuzzer."""

from pathlib import Path

import numpy as np
import pytest

from repro.acfg import ACFGDataset, FeatureScaler
from repro.acfg.graph import ACFG, from_sample
from repro.gnn import GCNClassifier, train_gnn
from repro.harden import (
    FLAG_REASONS,
    FuzzConfig,
    GraphSanitizer,
    HostileInputError,
    QuarantineReport,
    hostile_sample,
    inject_hostile,
    run_fuzz,
    sanitize_graphs,
)
from repro.malgen import generate_corpus
from repro.nn import Adam, NumericalError, Tensor, clip_grad_norm, grad_norm


def clean_graph(n=6, n_real=4):
    adjacency = np.zeros((n, n))
    adjacency[0, 1] = 1.0
    adjacency[1, 2] = 1.0
    adjacency[2, 3] = 2.0
    adjacency[3, 0] = 1.0
    features = np.ones((n, 12)) * 0.5
    features[n_real:] = 0.0
    return ACFG(adjacency, features, label=0, family="Bagle", n_real=n_real)


class TestGraphSanitizer:
    def test_clean_graph_has_no_findings(self):
        assert GraphSanitizer().check_acfg(clean_graph()) == []

    def test_nan_inf_negative_features_are_fatal(self):
        sanitizer = GraphSanitizer()
        for value, reason in [
            (np.nan, "nan_feature"),
            (np.inf, "inf_feature"),
            (-1.0, "negative_feature"),
        ]:
            graph = clean_graph()
            graph.features[1, 3] = value
            records = sanitizer.check_acfg(graph)
            assert [r.reason for r in records] == [reason]
            assert all(sanitizer.is_fatal(r) for r in records)

    def test_padding_rows_are_not_inspected(self):
        graph = clean_graph()
        graph.features[graph.n_real :, 0] = np.nan
        assert GraphSanitizer().check_acfg(graph) == []

    def test_bad_adjacency_value_is_fatal(self):
        sanitizer = GraphSanitizer()
        graph = clean_graph()
        graph.adjacency[0, 2] = 7.0
        records = sanitizer.check_acfg(graph)
        assert [r.reason for r in records] == ["bad_adjacency_value"]
        assert sanitizer.is_fatal(records[0])

    def test_self_loop_is_flag_only(self):
        sanitizer = GraphSanitizer()
        graph = clean_graph()
        graph.adjacency[2, 2] = 1.0
        records = sanitizer.check_acfg(graph)
        assert {r.reason for r in records} == {"self_loop"}
        assert not any(sanitizer.is_fatal(r) for r in records)

    def test_flag_reasons_can_be_promoted_to_fatal(self):
        sanitizer = GraphSanitizer(
            quarantine_reasons=GraphSanitizer().quarantine_reasons | FLAG_REASONS
        )
        graph = clean_graph()
        graph.adjacency[2, 2] = 1.0
        records = sanitizer.check_acfg(graph)
        assert all(sanitizer.is_fatal(r) for r in records)

    def test_oversized_graph_is_fatal(self):
        sanitizer = GraphSanitizer(max_nodes=3)
        records = sanitizer.check_acfg(clean_graph())
        assert "oversized_nodes" in {r.reason for r in records}

    def test_feature_dim_mismatch(self):
        sanitizer = GraphSanitizer(expected_features=13)
        records = sanitizer.check_acfg(clean_graph())
        assert "feature_dim_mismatch" in {r.reason for r in records}

    def test_empty_and_single_block_cfg_findings(self):
        sanitizer = GraphSanitizer()
        empty = sanitizer.check_sample(hostile_sample("empty"))
        assert [r.reason for r in empty] == ["empty_graph"]
        single = sanitizer.check_sample(hostile_sample("single_block"))
        assert "single_block" in {r.reason for r in single}


class TestSanitizeGraphs:
    def test_quarantine_drops_only_fatal(self):
        bad = clean_graph()
        bad.features[0, 0] = np.nan
        flagged = clean_graph()
        flagged.adjacency[1, 1] = 1.0
        kept, report = sanitize_graphs([clean_graph(), bad, flagged])
        assert len(kept) == 2
        assert report.inspected == 3
        assert len(report.quarantined) == 1
        assert report.by_reason()["nan_feature"] == 1

    def test_raise_policy(self):
        bad = clean_graph()
        bad.features[0, 0] = np.inf
        with pytest.raises(HostileInputError) as excinfo:
            sanitize_graphs([bad], on_bad_input="raise")
        assert excinfo.value.record.reason == "inf_feature"

    def test_none_policy_keeps_everything(self):
        bad = clean_graph()
        bad.features[0, 0] = np.nan
        kept, report = sanitize_graphs([bad], on_bad_input=None)
        assert len(kept) == 1
        assert report.records

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="on_bad_input"):
            sanitize_graphs([clean_graph()], on_bad_input="explode")

    def test_report_roundtrip_and_merge(self):
        bad = clean_graph()
        bad.features[0, 0] = np.nan
        _, a = sanitize_graphs([bad])
        _, b = sanitize_graphs([clean_graph()])
        merged = a.merged(b)
        assert merged.inspected == 2
        payload = merged.to_dict()
        assert payload["by_reason"] == {"nan_feature": 1}
        assert "quarantined" in merged.summary()


class TestHostileInjection:
    def test_injection_is_deterministic(self):
        corpus = generate_corpus(2, seed=5, families=("Bagle", "Bifrose"))
        a, names_a = inject_hostile(corpus, fraction=0.5, seed=9)
        b, names_b = inject_hostile(corpus, fraction=0.5, seed=9)
        assert names_a == names_b
        assert [s.program.name for s in a] == [s.program.name for s in b]

    def test_from_corpus_quarantines_injected(self):
        corpus = generate_corpus(3, seed=1, families=("Bagle", "Bifrose"))
        hostile_corpus, names = inject_hostile(corpus, fraction=0.5, seed=2)
        dataset = ACFGDataset.from_corpus(hostile_corpus, on_bad_input="quarantine")
        assert isinstance(dataset.quarantine, QuarantineReport)
        assert sorted(dataset.quarantine.quarantined) == sorted(names)
        assert len(dataset) == len(corpus)

    def test_from_corpus_raise_policy(self):
        corpus = generate_corpus(2, seed=1, families=("Bagle",))
        hostile_corpus, _ = inject_hostile(corpus, fraction=1.0, seed=2)
        with pytest.raises(HostileInputError):
            ACFGDataset.from_corpus(hostile_corpus, on_bad_input="raise")

    def test_quarantine_runs_before_verify(self):
        """Hostile samples must not reach the staticcheck verifier."""
        corpus = generate_corpus(2, seed=1, families=("Bagle",))
        hostile_corpus, _ = inject_hostile(corpus, fraction=0.5, seed=3)
        dataset = ACFGDataset.from_corpus(
            hostile_corpus, verify="strict", on_bad_input="quarantine"
        )
        assert dataset.quarantine.quarantined

    def test_entirely_hostile_corpus_raises(self):
        hostile_only = [hostile_sample("empty", name=f"e{i}") for i in range(3)]
        with pytest.raises(ValueError, match="survived"):
            ACFGDataset.from_corpus(hostile_only, on_bad_input="quarantine")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown hostile kind"):
            hostile_sample("zipbomb")

    def test_construction_error_is_quarantined(self):
        sample = hostile_sample("dangling_edge")
        with pytest.raises((IndexError, ValueError)):
            from_sample(sample)
        dataset_corpus = generate_corpus(2, seed=0, families=("Bagle",))
        dataset = ACFGDataset.from_corpus(
            dataset_corpus + [sample], on_bad_input="quarantine"
        )
        reasons = dataset.quarantine.by_reason()
        assert reasons.get("construction_error") == 1


class TestFeatureScalerValidation:
    def test_transform_rejects_negative_features(self):
        scaler = FeatureScaler().fit([clean_graph()])
        bad = clean_graph()
        bad.features[1, 2] = -3.0
        with pytest.raises(NumericalError, match="negative"):
            scaler.transform(bad)

    def test_transform_rejects_nan(self):
        scaler = FeatureScaler().fit([clean_graph()])
        bad = clean_graph()
        bad.features[1, 2] = np.nan
        with pytest.raises(NumericalError, match="NaN/Inf"):
            scaler.transform(bad)

    def test_fit_rejects_negative_features(self):
        bad = clean_graph()
        bad.features[0, 0] = -1.0
        with pytest.raises(NumericalError):
            FeatureScaler().fit([bad])

    def test_clean_transform_unchanged(self):
        scaler = FeatureScaler().fit([clean_graph()])
        out = scaler.transform(clean_graph())
        assert np.all(np.isfinite(out.features))


class TestNumericalGuards:
    def test_grad_norm_and_clipping(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = Tensor(np.array([4.0]), requires_grad=True)
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        assert grad_norm([a, b]) == pytest.approx(5.0)
        pre = clip_grad_norm([a, b], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        assert grad_norm([a, b]) == pytest.approx(1.0)

    def test_clip_raises_on_nonfinite(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        a.grad = np.array([np.nan])
        with pytest.raises(NumericalError):
            clip_grad_norm([a], max_norm=1.0)

    def test_optimizer_state_roundtrip(self):
        params = [Tensor(np.array([1.0, 2.0]), requires_grad=True)]
        optimizer = Adam(params, lr=0.1)
        params[0].grad = np.array([0.5, -0.5])
        optimizer.step()
        state = optimizer.state_dict()
        after_one = params[0].numpy().copy()
        params[0].grad = np.array([0.5, -0.5])
        optimizer.step()
        optimizer.load_state_dict(state)
        assert np.allclose(params[0].numpy(), after_one)


class TestTrainingRecovery:
    def _dataset(self):
        corpus = generate_corpus(3, seed=7, families=("Bagle", "Bifrose"))
        return ACFGDataset.from_corpus(corpus)

    def _model(self, dataset):
        return GCNClassifier(
            in_features=12,
            hidden=(8,),
            num_classes=dataset.num_classes,
            rng=np.random.default_rng(0),
        )

    def test_guarded_training_matches_unguarded(self):
        dataset = self._dataset()
        histories = []
        for guard in (False, True):
            model = self._model(dataset)
            histories.append(
                train_gnn(model, dataset, epochs=3, seed=0, guard=guard)
            )
        assert histories[0].losses == pytest.approx(histories[1].losses)

    def test_nan_loss_triggers_rollback_and_backoff(self):
        """Poisoned weights: every epoch rolls back, lr backs off, no raise.

        The epoch -1 snapshot is the poisoned model itself, so no epoch
        can recover to a finite loss — the point is that the guard turns
        each NaN step into a recorded rollback instead of a crash.
        """
        dataset = self._dataset()
        model = self._model(dataset)
        model.convs[0].weight.data[0, 0] = np.nan
        history = train_gnn(model, dataset, epochs=3, seed=0, max_recoveries=5)
        assert history.recovered_epochs == [0, 1, 2]
        assert history.losses == []

    def test_recovery_budget_exhaustion_raises(self):
        dataset = self._dataset()
        model = self._model(dataset)
        model.convs[0].weight.data[:] = np.nan
        # The fresh snapshot is also poisoned, so every epoch fails.
        with pytest.raises(NumericalError):
            train_gnn(model, dataset, epochs=5, seed=0, max_recoveries=2)

    def test_unguarded_training_poisons_silently(self):
        """guard=False is the seed's behavior: NaN flows through unnoticed."""
        dataset = self._dataset()
        model = self._model(dataset)
        model.convs[0].weight.data[0, 0] = np.nan
        history = train_gnn(model, dataset, epochs=2, seed=0, guard=False)
        assert history.losses and not np.isfinite(history.losses).any()
        assert history.recovered_epochs == []

    def test_loss_spike_validation(self):
        dataset = self._dataset()
        model = self._model(dataset)
        with pytest.raises(ValueError, match="loss_spike_factor"):
            train_gnn(model, dataset, epochs=1, loss_spike_factor=0.5)
        with pytest.raises(ValueError, match="lr_backoff"):
            train_gnn(model, dataset, epochs=1, lr_backoff=1.5)


HOSTILE_DIR = Path(__file__).parent / "data" / "hostile"


class TestFuzzer:
    def test_smoke_campaign_no_crashes(self, tmp_path):
        report = run_fuzz(
            FuzzConfig(
                iterations=80, seed=3, out_dir=tmp_path, hostile_dir=HOSTILE_DIR
            )
        )
        assert report.ok, report.summary()
        assert report.iterations == 80
        assert report.parsed > 0
        assert report.rejected  # hostile mutations must get typed rejections
        assert not list(tmp_path.glob("crash_*.json"))

    def test_campaign_is_deterministic(self):
        a = run_fuzz(FuzzConfig(iterations=40, seed=11))
        b = run_fuzz(FuzzConfig(iterations=40, seed=11))
        assert a.to_dict() == b.to_dict()

    def test_crash_repro_persisted_and_minimized(self, tmp_path, monkeypatch):
        """A planted bug must surface as a minimized, persisted repro."""
        from repro.harden import fuzz as fuzz_module

        original = fuzz_module.parse_program

        def booby_trapped(text, *args, **kwargs):
            if "ret" in text:  # present in every seed listing
                raise RuntimeError("planted parser bug")
            return original(text, *args, **kwargs)

        monkeypatch.setattr(fuzz_module, "parse_program", booby_trapped)
        report = run_fuzz(
            FuzzConfig(
                iterations=10, seed=0, out_dir=tmp_path, minimize_budget=5000
            )
        )
        assert not report.ok
        crash = report.crashes[0]
        assert crash.stage == "parse"
        assert crash.error_type == "RuntimeError"
        # Greedy minimization strips everything but the trigger line.
        assert "ret" in crash.text
        assert len(crash.text.splitlines()) == 1
        assert list(tmp_path.glob("crash_*.json"))
        assert list(tmp_path.glob("crash_*.asm"))
