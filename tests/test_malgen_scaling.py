"""Tests for corpus size scaling."""

import numpy as np
import pytest

from repro.disasm import build_cfg
from repro.malgen import generate_corpus, generate_program


class TestSizeMultiplier:
    def test_multiplier_grows_graphs(self):
        small, _ = generate_program("Rbot", seed=5, size_multiplier=1)
        large, _ = generate_program("Rbot", seed=5, size_multiplier=4)
        assert build_cfg(large).node_count > build_cfg(small).node_count

    def test_multiplier_one_is_default(self):
        default, _ = generate_program("Zbot", seed=9)
        explicit, _ = generate_program("Zbot", seed=9, size_multiplier=1)
        assert default.to_text() == explicit.to_text()

    def test_invalid_multiplier_raises(self):
        with pytest.raises(ValueError):
            generate_program("Zbot", seed=0, size_multiplier=0)

    def test_corpus_passes_multiplier_through(self):
        small = generate_corpus(1, seed=3, size_multiplier=1)
        large = generate_corpus(1, seed=3, size_multiplier=3)
        small_mean = np.mean([s.cfg.node_count for s in small])
        large_mean = np.mean([s.cfg.node_count for s in large])
        assert large_mean > 2 * small_mean

    def test_scaled_programs_remain_valid(self):
        for sample in generate_corpus(1, seed=4, size_multiplier=3):
            matrix = sample.cfg.adjacency_matrix()
            assert set(np.unique(matrix)) <= {0, 1, 2}
            assert len(sample.block_tags) == sample.cfg.node_count
