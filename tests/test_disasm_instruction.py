"""Unit tests for the instruction model and ISA categorization."""

import pytest

from repro.disasm import Instruction, InstructionCategory, category_of, is_register


class TestCategories:
    @pytest.mark.parametrize(
        "mnemonic,category",
        [
            ("jmp", InstructionCategory.TRANSFER),
            ("je", InstructionCategory.TRANSFER),
            ("loop", InstructionCategory.TRANSFER),
            ("call", InstructionCategory.CALL),
            ("add", InstructionCategory.ARITHMETIC),
            ("xor", InstructionCategory.ARITHMETIC),
            ("shl", InstructionCategory.ARITHMETIC),
            ("cmp", InstructionCategory.COMPARE),
            ("test", InstructionCategory.COMPARE),
            ("mov", InstructionCategory.MOV),
            ("push", InstructionCategory.MOV),
            ("lea", InstructionCategory.MOV),
            ("ret", InstructionCategory.TERMINATION),
            ("hlt", InstructionCategory.TERMINATION),
            ("dd", InstructionCategory.DATA_DECLARATION),
            ("nop", InstructionCategory.OTHER),
        ],
    )
    def test_known_mnemonics(self, mnemonic, category):
        assert category_of(mnemonic) is category

    def test_case_insensitive(self):
        assert category_of("MOV") is InstructionCategory.MOV

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(ValueError, match="unknown mnemonic"):
            category_of("frobnicate")

    def test_instruction_rejects_unknown_mnemonic(self):
        with pytest.raises(ValueError):
            Instruction("frobnicate")

    def test_is_register(self):
        assert is_register("eax")
        assert is_register("AL")
        assert not is_register("loc_401000")
        assert not is_register("42")


class TestControlFlowProperties:
    def test_unconditional_jump(self):
        instr = Instruction("jmp", ("loc_1",))
        assert instr.is_jump
        assert instr.is_unconditional_jump
        assert not instr.is_conditional_jump
        assert instr.ends_block
        assert instr.target == "loc_1"

    def test_conditional_jump(self):
        instr = Instruction("jne", ("loop_top",))
        assert instr.is_conditional_jump
        assert instr.target == "loop_top"

    def test_return_ends_block(self):
        assert Instruction("ret").ends_block
        assert Instruction("ret").is_return

    def test_call_with_local_target(self):
        instr = Instruction("call", ("sub_401000",))
        assert instr.is_call
        assert instr.target == "sub_401000"
        assert instr.api_symbol is None

    def test_call_through_api_symbol_has_no_local_target(self):
        instr = Instruction("call", ("ds:CreateThread",))
        assert instr.target is None
        assert instr.api_symbol == "CreateThread"

    def test_call_through_thunk(self):
        assert Instruction("call", ("j_SleepEx",)).api_symbol == "SleepEx"

    def test_call_through_register_has_no_target(self):
        assert Instruction("call", ("eax",)).target is None

    def test_mov_is_not_control_flow(self):
        instr = Instruction("mov", ("eax", "ebx"))
        assert not instr.ends_block
        assert instr.target is None


class TestOperandCounts:
    def test_numeric_constants_decimal(self):
        assert Instruction("mov", ("eax", "42")).numeric_constant_count == 1

    def test_numeric_constants_masm_hex(self):
        assert Instruction("xor", ("edx", "87BDC1D7h")).numeric_constant_count == 1

    def test_numeric_constants_0x_hex(self):
        assert Instruction("cmp", ("eax", "0x10")).numeric_constant_count == 1

    def test_negative_constant(self):
        assert Instruction("add", ("eax", "-8")).numeric_constant_count == 1

    def test_register_is_not_numeric(self):
        assert Instruction("mov", ("eax", "ebx")).numeric_constant_count == 0

    def test_string_constants(self):
        instr = Instruction("push", ("'cmd.exe'",))
        assert instr.string_constant_count == 1
        assert instr.numeric_constant_count == 0

    def test_memory_operand_counts_as_neither(self):
        instr = Instruction("mov", ("eax", "[ebp+8]"))
        assert instr.numeric_constant_count == 0
        assert instr.string_constant_count == 0


class TestDataflowProperties:
    def test_registers_read_from_memory_operand(self):
        instr = Instruction("mov", ("eax", "[ebp+var_8]"))
        assert "ebp" in instr.registers_read
        assert "eax" in instr.registers_read

    def test_writes_first_operand_register(self):
        assert Instruction("mov", ("eax", "1")).writes_first_operand_register
        assert not Instruction("mov", ("[esp]", "eax")).writes_first_operand_register

    def test_nop_is_semantic_nop(self):
        assert Instruction("nop").is_semantic_nop

    def test_mov_same_register_is_semantic_nop(self):
        assert Instruction("mov", ("edx", "edx")).is_semantic_nop
        assert Instruction("xchg", ("al", "al")).is_semantic_nop

    def test_real_mov_is_not_semantic_nop(self):
        assert not Instruction("mov", ("edx", "eax")).is_semantic_nop

    def test_str_roundtrip_format(self):
        assert str(Instruction("mov", ("eax", "1"))) == "mov eax, 1"
        assert str(Instruction("nop")) == "nop"
