"""Hostile assembly corpus: typed rejection or quarantine, never a crash."""

from pathlib import Path

import pytest

from repro.disasm import CFGBuildError, ParseError, build_cfg, parse_program
from repro.disasm.instruction import Instruction
from repro.harden import GraphSanitizer
from repro.malgen.corpus import LabeledSample, block_motif_tags

HOSTILE_DIR = Path(__file__).parent / "data" / "hostile"
HOSTILE_FILES = sorted(HOSTILE_DIR.glob("*.asm"))

#: Listings the parser itself must reject with a typed ParseError.
PARSE_REJECTED = {
    "dangling_jump",
    "duplicate_label",
    "empty_label",
    "unbalanced_brackets",
    "unknown_mnemonic",
    "unterminated_string",
}

#: Listings that parse but whose graphs the sanitizer must quarantine.
SANITIZER_QUARANTINED = {
    "comments_only": "empty_graph",
    "giant_operand": "single_block",
    "label_only": "single_block",
    "self_jump": "single_block",
}


def _sample(program):
    cfg = build_cfg(program)
    return LabeledSample(
        program=program,
        cfg=cfg,
        family="Bagle",
        label=0,
        motif_spans=[],
        block_tags=block_motif_tags(cfg, []),
    )


def test_corpus_covers_both_rejection_layers():
    names = {path.stem for path in HOSTILE_FILES}
    assert names == PARSE_REJECTED | set(SANITIZER_QUARANTINED)


@pytest.mark.parametrize(
    "path", HOSTILE_FILES, ids=[p.stem for p in HOSTILE_FILES]
)
def test_every_hostile_listing_is_handled(path):
    """The fuzzer invariant, enumerated: typed rejection or quarantine."""
    text = path.read_text()
    try:
        program = parse_program(text, name=path.stem)
    except ParseError:
        assert path.stem in PARSE_REJECTED
        return
    assert path.stem in SANITIZER_QUARANTINED
    sanitizer = GraphSanitizer()
    records = sanitizer.check_sample(_sample(program))
    fatal = [r.reason for r in records if sanitizer.is_fatal(r)]
    assert SANITIZER_QUARANTINED[path.stem] in fatal


class TestParseErrorMetadata:
    def test_line_number_and_reason(self):
        text = (HOSTILE_DIR / "duplicate_label.asm").read_text()
        with pytest.raises(ParseError) as excinfo:
            parse_program(text)
        assert excinfo.value.line_number == 4
        assert "duplicate label" in excinfo.value.reason

    def test_dangling_target_names_the_label(self):
        text = (HOSTILE_DIR / "dangling_jump.asm").read_text()
        with pytest.raises(ParseError, match="nowhere_to_be_found"):
            parse_program(text)


class TestResourceLimits:
    def test_max_instructions(self):
        text = "\n".join("nop" for _ in range(20))
        parse_program(text, max_instructions=20)
        with pytest.raises(ParseError, match="more than 19"):
            parse_program(text, max_instructions=19)

    def test_max_line_length(self):
        text = (HOSTILE_DIR / "giant_operand.asm").read_text()
        parse_program(text)  # unlimited by default
        with pytest.raises(ParseError, match="longer than 120"):
            parse_program(text, max_line_length=120)


class TestDanglingTargets:
    TEXT = "start:\n    cmp eax, 0\n    je nowhere\n    ret"

    def test_require_targets_defaults_on(self):
        with pytest.raises(ParseError, match="never defined"):
            parse_program(self.TEXT)

    def test_opt_out_defers_to_cfg_builder(self):
        program = parse_program(self.TEXT, require_targets=False)
        with pytest.raises(CFGBuildError) as excinfo:
            build_cfg(program)
        assert excinfo.value.label == "nowhere"

    def test_cfgbuilderror_is_a_value_error(self):
        # Callers that predate the typed error still catch it.
        assert issubclass(CFGBuildError, ValueError)

    def test_external_targets_are_not_labels(self):
        # Indirect/external call operands never resolve to a local label,
        # so require_targets must not reject them.
        program = parse_program("start:\n    call ds:Sleep\n    ret")
        assert program.instructions[0].target is None
        assert Instruction("call", ("eax",)).target is None
