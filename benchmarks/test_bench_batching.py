"""Throughput of the batched block-diagonal engine vs the per-graph loop.

Times identical training/inference workloads under ``mode="batched"``
(one CSR forward/backward per mini-batch) and ``mode="per_graph"`` (the
seed's dense loop), asserts the paper-pipeline numbers agree, and writes
``BENCH_batching.json`` with graphs/sec for each path (to the repo root
or ``$REPRO_BENCH_DIR``; ``repro.tools.bench_compare`` gates the
numbers against ``benchmarks/baselines/``).

Unlike the experiment benches this module builds its own small corpus —
it does not depend on the session pipeline fixture, so it stays fast
enough for the tier-1-adjacent smoke set.

``$REPRO_BENCH_PROFILE`` selects the workload scale: ``default`` (the
nightly lane, gated against ``BENCH_batching.json``) or ``quick`` (the
PR-time lane — a smaller corpus and fewer epochs, writing
``BENCH_quick.json`` so the two lanes keep independent baselines).
"""

import json
import os
import time

import numpy as np
import pytest
from conftest import bench_artifact_path

from repro.acfg import ACFGDataset, FeatureScaler, train_test_split
from repro.gnn import GCNClassifier, evaluate_accuracy, train_gnn
from repro.malgen import generate_corpus

PROFILES = {
    "default": {
        "artifact": "BENCH_batching.json",
        "samples_per_family": 6,
        "size_multiplier": 4,  # ~700-node graphs: the dense O(N²) regime
        "epochs": 12,
        "batch_size": 16,
        "min_speedup": 3.0,
    },
    "quick": {
        "artifact": "BENCH_quick.json",
        "samples_per_family": 4,
        "size_multiplier": 2,  # ~350-node graphs: small but not toy
        "epochs": 6,
        "batch_size": 8,
        "min_speedup": 2.0,
    },
}

_PROFILE_NAME = os.environ.get("REPRO_BENCH_PROFILE", "default")
if _PROFILE_NAME not in PROFILES:
    raise KeyError(
        f"REPRO_BENCH_PROFILE={_PROFILE_NAME!r}: choose from {sorted(PROFILES)}"
    )
_PROFILE = PROFILES[_PROFILE_NAME]

ARTIFACT_NAME = _PROFILE["artifact"]

SAMPLES_PER_FAMILY = _PROFILE["samples_per_family"]
SIZE_MULTIPLIER = _PROFILE["size_multiplier"]
EPOCHS = _PROFILE["epochs"]
BATCH_SIZE = _PROFILE["batch_size"]
MIN_SPEEDUP = _PROFILE["min_speedup"]


@pytest.fixture(scope="module")
def splits():
    corpus = generate_corpus(
        SAMPLES_PER_FAMILY, seed=7, size_multiplier=SIZE_MULTIPLIER
    )
    dataset = ACFGDataset.from_corpus(corpus)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=0)
    scaler = FeatureScaler().fit(list(train))
    return train.scaled(scaler), test.scaled(scaler)


def _fresh_model() -> GCNClassifier:
    return GCNClassifier(hidden=(32, 24, 16), rng=np.random.default_rng(0))


def _time_training(train_set, mode: str) -> tuple[float, list[float]]:
    model = _fresh_model()
    start = time.perf_counter()
    history = train_gnn(
        model,
        train_set,
        epochs=EPOCHS,
        batch_size=BATCH_SIZE,
        lr=0.005,
        seed=0,
        mode=mode,
    )
    return time.perf_counter() - start, history.losses


def _time_inference(model, test_set, batched: bool) -> tuple[float, np.ndarray]:
    start = time.perf_counter()
    if batched:
        predictions = model.predict_batch(list(test_set), batch_size=64)
    else:
        predictions = np.array([model.predict(g) for g in test_set], dtype=int)
    return time.perf_counter() - start, predictions


def test_bench_batched_vs_per_graph(splits):
    train_set, test_set = splits

    per_graph_s, per_graph_losses = _time_training(train_set, "per_graph")
    batched_s, batched_losses = _time_training(train_set, "batched")

    # Same seeds, same math: the two engines must trace the same descent.
    np.testing.assert_allclose(batched_losses, per_graph_losses, atol=1e-8)

    model = _fresh_model()
    train_gnn(model, train_set, epochs=EPOCHS, batch_size=BATCH_SIZE, seed=0)
    infer_loop_s, loop_preds = _time_inference(model, test_set, batched=False)
    infer_batch_s, batch_preds = _time_inference(model, test_set, batched=True)
    np.testing.assert_array_equal(batch_preds, loop_preds)

    graphs_trained = len(train_set) * EPOCHS
    report = {
        "corpus": {
            "profile": _PROFILE_NAME,
            "size_multiplier": SIZE_MULTIPLIER,
            "nodes_per_graph": int(train_set[0].n),
            "train_graphs": len(train_set),
            "test_graphs": len(test_set),
            "epochs": EPOCHS,
            "batch_size": BATCH_SIZE,
        },
        "training": {
            "per_graph": {
                "seconds": round(per_graph_s, 4),
                "graphs_per_sec": round(graphs_trained / per_graph_s, 2),
            },
            "batched": {
                "seconds": round(batched_s, 4),
                "graphs_per_sec": round(graphs_trained / batched_s, 2),
            },
            "speedup": round(per_graph_s / batched_s, 2),
            "max_abs_loss_delta": float(
                np.max(np.abs(np.array(batched_losses) - np.array(per_graph_losses)))
            ),
        },
        "inference": {
            "per_graph": {
                "seconds": round(infer_loop_s, 4),
                "graphs_per_sec": round(len(test_set) / infer_loop_s, 2),
            },
            "batched": {
                "seconds": round(infer_batch_s, 4),
                "graphs_per_sec": round(len(test_set) / infer_batch_s, 2),
            },
            "speedup": round(infer_loop_s / infer_batch_s, 2),
        },
        "accuracy": round(evaluate_accuracy(model, test_set), 4),
    }
    bench_artifact_path(ARTIFACT_NAME).write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"\ntraining   per_graph {report['training']['per_graph']['graphs_per_sec']:>8} g/s"
        f"  batched {report['training']['batched']['graphs_per_sec']:>8} g/s"
        f"  ({report['training']['speedup']}x)"
    )
    print(
        f"inference  per_graph {report['inference']['per_graph']['graphs_per_sec']:>8} g/s"
        f"  batched {report['inference']['batched']['graphs_per_sec']:>8} g/s"
        f"  ({report['inference']['speedup']}x)"
    )

    # Acceptance criterion: the batched engine trains >= MIN_SPEEDUP
    # faster (3x on the default lane, 2x on the smaller quick lane).
    assert report["training"]["speedup"] >= MIN_SPEEDUP, report["training"]
