"""Chaos lane: the serving SLO sweep under a committed fault plan.

Same trained stack and closed-loop workload as the serving lane
(:mod:`test_bench_serving`), but every daemon runs under
``benchmarks/fault_plans/chaos_default.json`` — nonzero fault
probability (exception / latency spike / non-finite output) at each of
the five stage boundaries.  Because fault decisions are pure functions
of ``(seed, stage, request key, attempt)``, two runs inject the same
faults into the same request multiset; only breaker timing varies.

Writes ``BENCH_chaos.json`` (repo root or ``$REPRO_BENCH_DIR``) with
per-level availability, degraded-response rate, typed-response rate,
latency percentiles under faults, and breaker trip/recovery counts.
``repro.tools.bench_compare`` gates availability / degraded-rate
absolutely and the typed-response rate hard at 1.0 — an unhandled
exception escaping ``submit`` under chaos fails CI.
"""

import json
from pathlib import Path

import numpy as np
from conftest import bench_artifact_path

from repro.acfg import ACFGDataset, FeatureScaler, train_test_split
from repro.acfg.graph import from_sample
from repro.core import CFGExplainer, CFGExplainerModel, train_cfgexplainer
from repro.gnn import GCNClassifier, train_gnn
from repro.malgen import generate_corpus
from repro.resilience import FaultPlan
from repro.serve import InferenceEngine, run_chaos_benchmark

ARTIFACT_NAME = "BENCH_chaos.json"
PLAN_PATH = Path(__file__).resolve().parent / "fault_plans" / "chaos_default.json"

SAMPLES_PER_FAMILY = 2
SEED = 9
LEVELS = (1, 2, 4)
REQUESTS_PER_CLIENT = 24
UNIQUE_GRAPHS = 6


def _build_engine(corpus) -> InferenceEngine:
    dataset = ACFGDataset.from_corpus(corpus)
    train, _ = train_test_split(dataset, test_fraction=0.25, seed=0)
    scaler = FeatureScaler().fit(list(train))
    scaled = train.scaled(scaler)
    gnn = GCNClassifier(hidden=(32, 24, 16), rng=np.random.default_rng(0))
    train_gnn(gnn, scaled, epochs=40, batch_size=16, lr=0.005, seed=0)
    theta = CFGExplainerModel(
        gnn.embedding_size, scaled.num_classes, rng=np.random.default_rng(1)
    )
    train_cfgexplainer(
        theta, gnn, scaled, num_epochs=120, minibatch_size=16, lr=0.003, seed=0
    )
    return InferenceEngine(
        gnn=gnn,
        scaler=scaler,
        explainers={"CFGExplainer": CFGExplainer(gnn, theta)},
        families=dataset.families,
    )


def test_bench_chaos():
    plan = FaultPlan.load(PLAN_PATH)
    assert not plan.empty
    for spec in plan.stages.values():
        assert spec.error + spec.latency + spec.nonfinite > 0

    corpus = generate_corpus(SAMPLES_PER_FAMILY, seed=SEED)
    engine = _build_engine(corpus)
    graphs = [from_sample(sample) for sample in corpus[:UNIQUE_GRAPHS]]

    report = run_chaos_benchmark(
        engine,
        graphs,
        plan,
        levels=LEVELS,
        requests_per_client=REQUESTS_PER_CLIENT,
    )
    bench_artifact_path(ARTIFACT_NAME).write_text(json.dumps(report, indent=2) + "\n")

    assert report["workload"]["fault_plan_fingerprint"] == plan.fingerprint()
    print()
    for level in LEVELS:
        row = report["chaos"][f"concurrency_{level}"]
        print(
            f"concurrency {level}:  avail {row['availability']:.3f}"
            f"  degraded {row['degraded_rate']:.3f}"
            f"  p99 {row['latency_p99_ms']:8.2f} ms"
            f"  faults {row['faults_injected']}"
            f"  trips {row['breaker_trips']}"
            f"  recoveries {row['breaker_recoveries']}"
        )
        # The resilience contract: every request gets a typed answer —
        # full, degraded, or typed rejection — even under faults.
        assert row["typed_response_rate"] == 1.0
        assert row["unhandled"] == 0
        assert row["completed"] == level * REQUESTS_PER_CLIENT
        # The plan is aggressive enough that chaos actually happened.
        assert row["faults_injected"] > 0
        assert 0.0 <= row["availability"] <= 1.0
        assert row["availability"] + row["degraded_rate"] >= 0.99
