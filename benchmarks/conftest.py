"""Shared benchmark fixtures.

One pipeline (corpus, trained GNN, trained explainers) is built per
benchmark session and reused by every experiment module.  The
configuration is the repository default, scaled to run all benches in a
few minutes on CPU while keeping the paper's architectural shape.
"""

import pytest

from repro.eval import ExperimentConfig, run_pipeline, sweep_all_families

BENCH_CONFIG = ExperimentConfig(
    samples_per_family=10,
    size_multiplier=3,
    gnn_epochs=150,
    explainer_epochs=600,
    gnnexplainer_epochs=60,
    pgexplainer_epochs=12,
    subgraphx_iterations=25,
    subgraphx_shapley_samples=4,
)


@pytest.fixture(scope="session")
def artifacts():
    return run_pipeline(BENCH_CONFIG)


@pytest.fixture(scope="session")
def sweeps(artifacts):
    """Figure 2's full grid, shared by the Figure 2 and Table III benches."""
    return sweep_all_families(
        artifacts.gnn,
        artifacts.explainers,
        artifacts.test_set,
        step_size=BENCH_CONFIG.step_size,
    )
