"""Shared benchmark fixtures.

One pipeline (corpus, trained GNN, trained explainers) is built per
benchmark session and reused by every experiment module.  The
configuration is the repository default, scaled to run all benches in a
few minutes on CPU while keeping the paper's architectural shape.

``BENCH_*.json`` artifacts default to the repository root (the
committed location) but honor ``$REPRO_BENCH_DIR`` so CI can redirect
them to a collectable directory; use the ``bench_artifact_dir`` fixture
(or :func:`bench_artifact_path`) rather than hard-coding paths.
"""

import os
from pathlib import Path

import pytest

from repro.eval import ExperimentConfig, run_pipeline, sweep_all_families

REPO_ROOT = Path(__file__).resolve().parent.parent


def _bench_dir() -> Path:
    override = os.environ.get("REPRO_BENCH_DIR")
    base = Path(override) if override else REPO_ROOT
    base.mkdir(parents=True, exist_ok=True)
    return base


def bench_artifact_path(name: str) -> Path:
    """Where a ``BENCH_*.json`` artifact should be written.

    ``$REPRO_BENCH_DIR`` overrides the default repo-root location; the
    directory is created on demand.
    """
    return _bench_dir() / name


@pytest.fixture(scope="session")
def bench_artifact_dir() -> Path:
    return _bench_dir()

BENCH_CONFIG = ExperimentConfig(
    samples_per_family=10,
    size_multiplier=3,
    gnn_epochs=150,
    explainer_epochs=600,
    gnnexplainer_epochs=60,
    pgexplainer_epochs=12,
    subgraphx_iterations=25,
    subgraphx_shapley_samples=4,
)


@pytest.fixture(scope="session")
def artifacts():
    return run_pipeline(BENCH_CONFIG)


@pytest.fixture(scope="session")
def sweeps(artifacts):
    """Figure 2's full grid, shared by the Figure 2 and Table III benches."""
    return sweep_all_families(
        artifacts.gnn,
        artifacts.explainers,
        artifacts.test_set,
        step_size=BENCH_CONFIG.step_size,
    )
