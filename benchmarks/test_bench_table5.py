"""E4 — Table V: malware patterns in top-20% subgraphs.

Runs CFGExplainer over held-out malware samples, analyzes the top-20%
blocks of each for the paper's micro-level patterns and macro-level
behaviour signatures, and prints the per-family report.

Paper shape: code manipulation / XOR obfuscation / semantic-NOP
patterns surface for the families Table V attributes them to (e.g.
semantic NOPs in Bagle and Vundo, XOR obfuscation in Bifrose/Hupigon/
Vundo/Zbot, wsprintfA manipulation in Zlob).
"""

import pytest

pytestmark = pytest.mark.slow

from repro.analysis import build_family_reports, micro_analysis
from repro.analysis.report import format_table_v


def _pairs(artifacts, per_family=3):
    explainer = artifacts.explainers["CFGExplainer"]
    pairs = []
    for family in artifacts.test_set.families:
        for graph in artifacts.test_set.of_family(family)[:per_family]:
            sample = artifacts.sample_for(graph.name)
            pairs.append((sample, explainer.explain(graph)))
    return pairs


def test_bench_micro_analysis_speed(benchmark, artifacts):
    sample = artifacts.corpus[0]
    result = benchmark(micro_analysis, sample.cfg)
    assert isinstance(result, list)


def test_bench_table5_report(benchmark, artifacts):
    pairs = _pairs(artifacts)
    reports = benchmark.pedantic(
        build_family_reports, args=(pairs,), kwargs={"fraction": 0.2},
        rounds=1, iterations=1,
    )
    print()
    print(format_table_v(reports))

    # Pattern classes planted by the generator must be recoverable from
    # the top-20% subgraphs for at least a majority of malware families.
    malware_reports = [r for f, r in reports.items() if f != "Benign"]
    with_patterns = [r for r in malware_reports if r.pattern_counts]
    assert len(with_patterns) >= len(malware_reports) // 2
