"""E7 (extension) — ground-truth motif recovery.

The synthetic corpus knows which basic blocks came from family-
signature motifs, so unlike the paper we can measure directly whether
each explainer's top-20% subgraph contains the planted discriminative
code.  Reported: mean precision/recall per explainer, plus the random
floor.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.explain.groundtruth import mean_signature_recovery


def _pairs(artifacts, name, count=12):
    explainer = artifacts.explainers[name]
    pairs = []
    for graph in artifacts.test_set.graphs[:count]:
        if graph.family == "Benign":
            continue
        sample = artifacts.sample_for(graph.name)
        pairs.append((sample, explainer.explain(graph)))
    return pairs


def test_bench_signature_recovery(benchmark, artifacts):
    print()
    print(f"{'explainer':14s} | {'precision':>9s} | {'recall':>7s} | {'F1':>6s}  (top-20%)")
    print("-" * 50)
    results = {}
    for name in artifacts.explainers:
        pairs = _pairs(artifacts, name)
        recovery = mean_signature_recovery(pairs, fraction=0.2)
        results[name] = recovery
        print(
            f"{name:14s} | {recovery.precision:>9.3f} | {recovery.recall:>7.3f} "
            f"| {recovery.f1:>6.3f}"
        )

    pairs = _pairs(artifacts, "CFGExplainer", count=6)
    benchmark.pedantic(
        mean_signature_recovery, args=(pairs,), kwargs={"fraction": 0.2},
        rounds=2, iterations=1,
    )
    for recovery in results.values():
        assert 0.0 <= recovery.precision <= 1.0
