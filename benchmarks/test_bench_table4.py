"""E3 — Table IV: explanation time.

Benchmarks one explanation per explainer (the pytest-benchmark numbers
are Table IV's per-explanation column) and prints the assembled table
including the offline training times measured by the pipeline.

Paper shape: CFGExplainer and PGExplainer are fast per explanation but
pay an offline training cost; GNNExplainer is an order of magnitude
slower; SubgraphX is the slowest of all.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.eval import measure_timings
from repro.eval.tables import format_table4


@pytest.mark.parametrize(
    "name", ["CFGExplainer", "GNNExplainer", "SubgraphX", "PGExplainer"]
)
def test_bench_single_explanation(benchmark, artifacts, name):
    explainer = artifacts.explainers[name]
    graph = artifacts.test_set.graphs[0]
    benchmark.pedantic(
        explainer.explain, args=(graph,), kwargs={"step_size": 10},
        rounds=3, iterations=1,
    )


def test_bench_table4_report(benchmark, artifacts):
    graphs = artifacts.test_set.graphs[:6]
    timings = benchmark.pedantic(
        measure_timings,
        args=(artifacts.explainers, graphs, artifacts.offline_training_seconds),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table4(timings))

    by_name = {t.explainer_name: t for t in timings}
    # The paper's ordering: the two local search methods cost the most
    # per explanation; the two offline-trained ones are fast.
    assert by_name["SubgraphX"].mean_seconds > by_name["CFGExplainer"].mean_seconds
    assert by_name["GNNExplainer"].mean_seconds > by_name["CFGExplainer"].mean_seconds
    assert by_name["CFGExplainer"].offline_seconds > 0
    assert by_name["PGExplainer"].offline_seconds > 0
