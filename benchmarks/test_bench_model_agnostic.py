"""E8 (extension) — model-agnosticism across GNN architectures.

Section IV argues CFGExplainer is model-agnostic because it consumes
only node embeddings.  The paper demonstrates it on one GCN; here the
same Θ training and Algorithm 2 run against a second architecture —
a DGCNN-style classifier (the MAGIC/DGCNN family the paper's target
model belongs to) — with no code changes.
"""

import pytest

pytestmark = pytest.mark.slow

import numpy as np

from repro.core import CFGExplainer, CFGExplainerModel, train_cfgexplainer
from repro.explain import accuracy_auc, sweep_accuracy_curve
from repro.gnn import DGCNNClassifier, evaluate_accuracy, train_gnn


def test_bench_cfgexplainer_on_dgcnn(benchmark, artifacts):
    train_set, test_set = artifacts.train_set, artifacts.test_set

    dgcnn = DGCNNClassifier(
        conv_channels=(24, 16, 8),
        sort_k=24,
        num_classes=test_set.num_classes,
        rng=np.random.default_rng(0),
    )
    train_gnn(dgcnn, train_set, epochs=60, batch_size=16, lr=0.005, seed=0)
    accuracy = evaluate_accuracy(dgcnn, test_set)

    theta = CFGExplainerModel(
        dgcnn.embedding_size, test_set.num_classes, rng=np.random.default_rng(1)
    )
    train_cfgexplainer(
        theta, dgcnn, train_set,
        num_epochs=artifacts.config.explainer_epochs,
        minibatch_size=16, lr=0.003, seed=0,
    )
    explainer = CFGExplainer(dgcnn, theta)

    explanations = [explainer.explain(g) for g in test_set.graphs[:10]]
    fractions, accuracies = sweep_accuracy_curve(dgcnn, explanations)
    auc = accuracy_auc(fractions, accuracies)

    print(f"\nDGCNN-style Φ: test accuracy {accuracy:.3f}, "
          f"CFGExplainer AUC {auc:.3f} (same Θ code as the GCN run)")

    benchmark.pedantic(
        explainer.explain, args=(test_set.graphs[0],), rounds=2, iterations=1
    )
    # The explainer must function (complete ladders, curves ending at 1).
    assert accuracies[-1] == 1.0
