"""Serving SLO lane: closed-loop load against the in-process daemon.

Trains a small pipeline, wraps it in :class:`repro.serve.InferenceEngine`,
and drives a fresh :class:`repro.serve.ServeDaemon` with the
deterministic closed-loop generator (:mod:`repro.serve.loadgen`) at
several concurrency levels.  Writes ``BENCH_serving.json`` (repo root
or ``$REPRO_BENCH_DIR``) with per-level p50/p99 latency and
graphs/sec; ``repro.tools.bench_compare`` gates the latencies with the
lower-is-better ``*_p50_ms`` / ``*_p99_ms`` policies and the
throughput with the ``*graphs_per_sec`` gate.

Like the other lanes this module builds its own corpus and models so
the measured numbers do not depend on fixture sharing; the workload
(6 unique graphs, 24 requests per client, levels 1/2/4) is sized for a
single-CPU runner and repeats graphs so the content-addressed cache is
exercised under load.
"""

import json

import numpy as np
from conftest import bench_artifact_path

from repro.acfg import ACFGDataset, FeatureScaler, train_test_split
from repro.acfg.graph import from_sample
from repro.core import CFGExplainer, CFGExplainerModel, train_cfgexplainer
from repro.gnn import GCNClassifier, train_gnn
from repro.malgen import generate_corpus
from repro.serve import InferenceEngine, run_slo_benchmark

ARTIFACT_NAME = "BENCH_serving.json"

SAMPLES_PER_FAMILY = 2
SEED = 9
LEVELS = (1, 2, 4)
REQUESTS_PER_CLIENT = 24
UNIQUE_GRAPHS = 6


def _build_engine(corpus) -> InferenceEngine:
    dataset = ACFGDataset.from_corpus(corpus)
    train, _ = train_test_split(dataset, test_fraction=0.25, seed=0)
    scaler = FeatureScaler().fit(list(train))
    scaled = train.scaled(scaler)
    gnn = GCNClassifier(hidden=(32, 24, 16), rng=np.random.default_rng(0))
    train_gnn(gnn, scaled, epochs=40, batch_size=16, lr=0.005, seed=0)
    theta = CFGExplainerModel(
        gnn.embedding_size, scaled.num_classes, rng=np.random.default_rng(1)
    )
    train_cfgexplainer(
        theta, gnn, scaled, num_epochs=120, minibatch_size=16, lr=0.003, seed=0
    )
    return InferenceEngine(
        gnn=gnn,
        scaler=scaler,
        explainers={"CFGExplainer": CFGExplainer(gnn, theta)},
        families=dataset.families,
    )


def test_bench_serving_slo():
    corpus = generate_corpus(SAMPLES_PER_FAMILY, seed=SEED)
    engine = _build_engine(corpus)
    graphs = [from_sample(sample) for sample in corpus[:UNIQUE_GRAPHS]]

    report = run_slo_benchmark(
        engine,
        graphs,
        levels=LEVELS,
        requests_per_client=REQUESTS_PER_CLIENT,
    )
    bench_artifact_path(ARTIFACT_NAME).write_text(json.dumps(report, indent=2) + "\n")

    print()
    for level in LEVELS:
        row = report["serving"][f"concurrency_{level}"]
        print(
            f"concurrency {level}:  p50 {row['latency_p50_ms']:8.2f} ms"
            f"  p99 {row['latency_p99_ms']:8.2f} ms"
            f"  {row['graphs_per_sec']:6.2f} graphs/s"
            f"  cache hits {row['cache_hits']}"
        )
        # Closed-loop clients retry on backpressure: every request must
        # eventually complete, and repeats must hit the cache.
        assert row["completed"] == level * REQUESTS_PER_CLIENT
        assert row["cache_hits"] > 0
        assert row["latency_p99_ms"] >= row["latency_p50_ms"]
