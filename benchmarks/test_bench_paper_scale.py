"""Paper-scale kernel lane: batched engine throughput on ~7350-node graphs.

The CFGExplainer evaluation corpus tops out around 7352 basic blocks
per CFG; this lane times the sparse kernel backend (CSR Â, fused
GCN layers, workspace buffer reuse) at that scale, where the dense
per-graph path's O(N²) memory (a ~430 MB dense Â per graph) makes a
full side-by-side sweep impractical.  The batched path is timed for
training and inference; one dense per-graph forward anchors parity so
the sparse kernels cannot silently diverge at scale.

Writes ``BENCH_paper_scale.json`` (repo root or ``$REPRO_BENCH_DIR``);
``repro.tools.bench_compare`` gates the ``*graphs_per_sec`` metrics
against ``benchmarks/baselines/``.  Like the reduction lane the
workload (2 epochs, batch of 4) is sized for a single-CPU nightly
runner while keeping the paper's graph scale.
"""

import json
import time

import numpy as np
from conftest import bench_artifact_path

from repro.acfg import ACFGDataset, FeatureScaler
from repro.gnn import GCNClassifier, train_gnn
from repro.malgen import generate_corpus

ARTIFACT_NAME = "BENCH_paper_scale.json"

FAMILIES = ("Rbot", "Benign")
SAMPLES_PER_FAMILY = 2
SIZE_MULTIPLIER = 47  # largest graph ~7400 nodes, the paper's ceiling
SEED = 7
EPOCHS = 2
BATCH_SIZE = 4
INFERENCE_PASSES = 3


def test_bench_paper_scale_batched_engine():
    corpus = generate_corpus(
        SAMPLES_PER_FAMILY,
        seed=SEED,
        families=FAMILIES,
        size_multiplier=SIZE_MULTIPLIER,
    )
    dataset = ACFGDataset.from_corpus(corpus, families=FAMILIES)
    dataset = dataset.scaled(FeatureScaler().fit(list(dataset.graphs)))
    graphs = list(dataset)
    total_nodes = int(sum(g.n_real for g in graphs))
    largest = max(g.n_real for g in graphs)

    model = GCNClassifier(hidden=(32, 24, 16), rng=np.random.default_rng(0))
    start = time.perf_counter()
    train_gnn(
        model, dataset, epochs=EPOCHS, batch_size=BATCH_SIZE, seed=0,
        mode="batched",
    )
    train_s = time.perf_counter() - start
    graphs_trained = len(graphs) * EPOCHS

    start = time.perf_counter()
    for _ in range(INFERENCE_PASSES):
        batch_preds = model.predict_batch(graphs, batch_size=BATCH_SIZE)
    infer_s = time.perf_counter() - start
    graphs_inferred = len(graphs) * INFERENCE_PASSES

    # Parity anchor: the dense per-graph path must agree with the
    # batched sparse kernels on the largest graph.
    big_index = int(np.argmax([g.n_real for g in graphs]))
    assert int(batch_preds[big_index]) == int(model.predict(graphs[big_index]))

    report = {
        "corpus": {
            "families": list(FAMILIES),
            "samples_per_family": SAMPLES_PER_FAMILY,
            "size_multiplier": SIZE_MULTIPLIER,
            "largest_graph_nodes": int(largest),
            "total_real_nodes": total_nodes,
            "epochs": EPOCHS,
            "batch_size": BATCH_SIZE,
        },
        "training": {
            "batched": {
                "seconds": round(train_s, 4),
                "graphs_per_sec": round(graphs_trained / train_s, 2),
                "knodes_per_sec": round(
                    total_nodes * EPOCHS / train_s / 1000.0, 2
                ),
            },
        },
        "inference": {
            "batched": {
                "seconds": round(infer_s, 4),
                "graphs_per_sec": round(graphs_inferred / infer_s, 2),
                "knodes_per_sec": round(
                    total_nodes * INFERENCE_PASSES / infer_s / 1000.0, 2
                ),
            },
        },
    }
    bench_artifact_path(ARTIFACT_NAME).write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"\npaper-scale ({largest}-node ceiling)"
        f"  train {report['training']['batched']['graphs_per_sec']:>7} g/s"
        f"  infer {report['inference']['batched']['graphs_per_sec']:>7} g/s"
        f"  ({report['inference']['batched']['knodes_per_sec']} knodes/s)"
    )
