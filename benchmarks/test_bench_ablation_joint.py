"""A1 — ablation: joint Θ_s+Θ_c training vs an untrained scorer.

Section IV-A argues the architectural connection between the scorer and
the surrogate classifier is what makes the scores meaningful: training
Θ_c alone (leaving Θ_s at its random initialization) should yield
markedly worse explanation AUC than the joint procedure of Algorithm 1.
"""

import pytest

pytestmark = pytest.mark.slow

import numpy as np

from repro.core import CFGExplainer, CFGExplainerModel, train_cfgexplainer
from repro.explain import accuracy_auc, sweep_accuracy_curve


def _auc_with_theta(artifacts, theta, count=12):
    explainer = CFGExplainer(artifacts.gnn, theta)
    explanations = [explainer.explain(g) for g in artifacts.test_set.graphs[:count]]
    fractions, accuracies = sweep_accuracy_curve(artifacts.gnn, explanations)
    return accuracy_auc(fractions, accuracies)


def test_bench_ablation_joint_training(benchmark, artifacts):
    config = artifacts.config
    trained_theta = artifacts.explainers["CFGExplainer"].theta

    # Untrained control: same architecture, random weights.
    random_theta = CFGExplainerModel(
        artifacts.gnn.embedding_size,
        artifacts.test_set.num_classes,
        rng=np.random.default_rng(99),
    )

    joint_auc = _auc_with_theta(artifacts, trained_theta)
    random_auc = _auc_with_theta(artifacts, random_theta)

    print(f"\njointly trained Θ: AUC={joint_auc:.3f}")
    print(f"random-scorer Θ:  AUC={random_auc:.3f}")

    # Benchmark the joint training stage itself (short run).
    def short_training():
        theta = CFGExplainerModel(
            artifacts.gnn.embedding_size,
            artifacts.test_set.num_classes,
            rng=np.random.default_rng(5),
        )
        return train_cfgexplainer(
            theta,
            artifacts.gnn,
            artifacts.train_set,
            num_epochs=25,
            minibatch_size=config.explainer_minibatch,
            seed=0,
        )

    history = benchmark.pedantic(short_training, rounds=1, iterations=1)
    assert history.final_loss < history.losses[0]
    # The trained explainer must not be worse than the random control.
    assert joint_auc >= random_auc - 0.05
