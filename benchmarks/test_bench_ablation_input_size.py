"""A3 — ablation: node-embedding vs edge-embedding input size.

Section V-C argues CFGExplainer's [N, f] node-embedding input is
fundamentally cheaper than PGExplainer's up-to-[N², 2f] edge-embedding
construction.  This bench measures the actual constructed input sizes
and the per-graph scoring time of both models on the same graphs.
"""

import pytest

pytestmark = pytest.mark.slow

import numpy as np

from repro.core.training import precompute_embeddings
from repro.nn import Tensor, no_grad


def test_bench_input_construction_sizes(benchmark, artifacts):
    pg = artifacts.explainers["PGExplainer"]
    f = artifacts.gnn.embedding_size
    benchmark.pedantic(
        pg._cache_graph, args=(artifacts.test_set.graphs[0],),
        rounds=1, iterations=1,
    )

    print()
    print(f"{'graph':>22s} | {'CFGExplainer input':>20s} | {'PGExplainer input':>20s}")
    print("-" * 70)
    ratios = []
    for graph in artifacts.test_set.graphs[:5]:
        cache = pg._cache_graph(graph)
        node_cells = graph.n * f
        edge_cells = cache.edge_embeddings.shape[0] * 2 * f
        ratios.append(edge_cells / node_cells)
        print(
            f"{graph.name:>22s} | [{graph.n}, {f}] = {node_cells:>7d} | "
            f"[{cache.edge_embeddings.shape[0]}, {2 * f}] = {edge_cells:>7d}"
        )
    worst_case = graph.n * graph.n * 2 * f
    print(f"\nPGExplainer worst case [N², 2f] = {worst_case} cells "
          f"({worst_case / node_cells:.0f}x CFGExplainer's input)")
    assert all(r > 0 for r in ratios)


def test_bench_scoring_time_node_vs_edge(benchmark, artifacts):
    """Time Θ_s scoring ([N, f] input) — compare to the edge-MLP bench."""
    theta = artifacts.explainers["CFGExplainer"].theta
    graph = artifacts.test_set.graphs[0]
    cached = precompute_embeddings(artifacts.gnn, type(artifacts.test_set)(
        [graph], artifacts.test_set.families
    ))
    embeddings = cached[0].embeddings

    def score_nodes():
        with no_grad():
            return theta.scorer(Tensor(embeddings))

    result = benchmark(score_nodes)
    assert result.shape == (graph.n, 1)


def test_bench_scoring_time_edge_mlp(benchmark, artifacts):
    pg = artifacts.explainers["PGExplainer"]
    graph = artifacts.test_set.graphs[0]
    cache = pg._cache_graph(graph)

    def score_edges():
        with no_grad():
            return pg.predictor(Tensor(cache.edge_embeddings))

    result = benchmark(score_edges)
    assert result.shape[0] == cache.edge_embeddings.shape[0]
