"""Paper-scale reduction lane: end-to-end cost with and without ``repro.reduce``.

Builds a small corpus of ~7000-node graphs (the scale where the dense
O(N²) pipeline genuinely hurts), then runs the identical train+explain
workload twice — once on the raw ACFGs and once through the
static-analysis reduction pipeline (chain collapse, unreachable
pruning, dead-store bypass, leaf filter) — and writes
``BENCH_reduction.json`` (to the repo root or ``$REPRO_BENCH_DIR``;
``repro.tools.bench_compare`` gates the numbers against
``benchmarks/baselines/``).

The reduced lane is charged honestly: its dataset time *includes* the
reduction passes, and its explanation time includes lifting the
explanation back onto original block indices.  Gated metrics:

- ``*.speedup`` / ``*compression`` — scale-free ratios (30 % relative);
- ``fidelity.jaccard`` — overlap between the unreduced explanation's
  top-20 % blocks and the lifted reduced explanation's top-20 % blocks,
  both in original index space (15 % absolute drop);
- ``accuracy.accuracy_drop`` — train-set accuracy cost of reducing
  (25 % absolute).

Like the batching bench this module builds its own corpus and trains
its own models; the workload (2 epochs, 1 explained graph, 1 explainer
epoch) is sized for a single-CPU runner — roughly a minute reduced vs
several minutes unreduced — while keeping the ~7000-node graph scale.
"""

import json
import time

import numpy as np
from conftest import bench_artifact_path

from repro.acfg import ACFGDataset, FeatureScaler
from repro.baselines.gnnexplainer import GNNExplainerBaseline
from repro.gnn import GCNClassifier, evaluate_accuracy, train_gnn
from repro.malgen import generate_corpus
from repro.reduce import ReduceConfig

ARTIFACT_NAME = "BENCH_reduction.json"

FAMILIES = ("Rbot", "Benign")
SAMPLES_PER_FAMILY = 2
SIZE_MULTIPLIER = 47  # largest graph ~7400 nodes
SEED = 7
TRAIN_EPOCHS = 2
BATCH_SIZE = 4
EXPLAINER_EPOCHS = 1
STEP_SIZE = 10
TOP_FRACTION = 0.2

REDUCE_CONFIG = ReduceConfig(
    prune_dead_stores=True,
    filter_leaves=True,
    leaf_max_in_degree=8,
    max_rounds=8,
)


def _build_dataset(corpus, reduce=None):
    start = time.perf_counter()
    dataset = ACFGDataset.from_corpus(corpus, families=FAMILIES, reduce=reduce)
    stats = dataset.reduction  # scaled() returns a fresh dataset: grab now
    dataset = dataset.scaled(FeatureScaler().fit(list(dataset.graphs)))
    return dataset, stats, time.perf_counter() - start


def _train(dataset) -> tuple[GCNClassifier, float]:
    model = GCNClassifier(hidden=(32, 24, 16), rng=np.random.default_rng(0))
    start = time.perf_counter()
    train_gnn(model, dataset, epochs=TRAIN_EPOCHS, batch_size=BATCH_SIZE, seed=0)
    return model, time.perf_counter() - start


def _jaccard(a: np.ndarray, b: np.ndarray) -> float:
    left, right = set(a.tolist()), set(b.tolist())
    return len(left & right) / len(left | right)


def test_bench_reduction_lane():
    corpus = generate_corpus(
        SAMPLES_PER_FAMILY,
        seed=SEED,
        families=FAMILIES,
        size_multiplier=SIZE_MULTIPLIER,
    )

    dataset_u, _, dataset_u_s = _build_dataset(corpus)
    dataset_r, stats, dataset_r_s = _build_dataset(corpus, reduce=REDUCE_CONFIG)
    assert stats is not None and stats.nodes_after < stats.nodes_before

    model_u, train_u_s = _train(dataset_u)
    model_r, train_r_s = _train(dataset_r)

    # Explain the largest graph in both lanes; the reduced lane's
    # explanation is lifted back onto original block indices.
    big_u = max(dataset_u.graphs, key=lambda g: g.n_real)
    big_r = next(g for g in dataset_r.graphs if g.name == big_u.name)
    lift = dataset_r.lift_map_for(big_u.name)
    assert lift is not None and not lift.is_identity

    explainer_u = GNNExplainerBaseline(model_u, epochs=EXPLAINER_EPOCHS, seed=0)
    start = time.perf_counter()
    explanation_u = explainer_u.explain(big_u, step_size=STEP_SIZE)
    explain_u_s = time.perf_counter() - start

    explainer_r = GNNExplainerBaseline(model_r, epochs=EXPLAINER_EPOCHS, seed=0)
    start = time.perf_counter()
    explanation_r = explainer_r.explain_lifted(
        big_r, big_u, lift, step_size=STEP_SIZE
    )
    explain_r_s = time.perf_counter() - start

    # Lifted explanation ranks original blocks: directly comparable.
    assert explanation_r.graph.n_real == big_u.n_real
    jaccard = _jaccard(
        explanation_u.top_nodes(TOP_FRACTION), explanation_r.top_nodes(TOP_FRACTION)
    )

    accuracy_u = evaluate_accuracy(model_u, dataset_u)
    accuracy_r = evaluate_accuracy(model_r, dataset_r)

    total_u = dataset_u_s + train_u_s + explain_u_s
    total_r = dataset_r_s + train_r_s + explain_r_s
    report = {
        "corpus": {
            "families": list(FAMILIES),
            "samples_per_family": SAMPLES_PER_FAMILY,
            "size_multiplier": SIZE_MULTIPLIER,
            "largest_graph_nodes": int(big_u.n_real),
            "train_epochs": TRAIN_EPOCHS,
            "explainer_epochs": EXPLAINER_EPOCHS,
        },
        "reduction": {
            "nodes_before": stats.nodes_before,
            "nodes_after": stats.nodes_after,
            "node_compression": round(stats.node_compression, 3),
            "edge_compression": round(stats.edge_compression, 3),
            "chains_collapsed": stats.chains_collapsed,
            "blocks_merged": stats.blocks_merged,
        },
        "dataset": {
            "unreduced_seconds": round(dataset_u_s, 2),
            "reduced_seconds": round(dataset_r_s, 2),
        },
        "training": {
            "unreduced_seconds": round(train_u_s, 2),
            "reduced_seconds": round(train_r_s, 2),
            "speedup": round(train_u_s / train_r_s, 2),
        },
        "explanation": {
            "unreduced_seconds": round(explain_u_s, 2),
            "reduced_seconds": round(explain_r_s, 2),
            "speedup": round(explain_u_s / explain_r_s, 2),
        },
        "end_to_end": {
            "unreduced_seconds": round(total_u, 2),
            "reduced_seconds": round(total_r, 2),
            "speedup": round(total_u / total_r, 2),
        },
        "fidelity": {
            "top_fraction": TOP_FRACTION,
            "jaccard": round(jaccard, 4),
        },
        "accuracy": {
            "unreduced": round(accuracy_u, 4),
            "reduced": round(accuracy_r, 4),
            "accuracy_drop": round(max(0.0, accuracy_u - accuracy_r), 4),
        },
    }
    bench_artifact_path(ARTIFACT_NAME).write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"\nreduction  {stats.nodes_before} -> {stats.nodes_after} nodes"
        f"  ({report['reduction']['node_compression']}x)"
    )
    print(
        f"end-to-end unreduced {total_u:7.1f}s  reduced {total_r:7.1f}s"
        f"  ({report['end_to_end']['speedup']}x)"
        f"  jaccard@{TOP_FRACTION} {jaccard:.3f}"
    )

    # Acceptance criterion: reduction pays for itself >= 1.5x end to end.
    assert report["end_to_end"]["speedup"] >= 1.5, report["end_to_end"]
