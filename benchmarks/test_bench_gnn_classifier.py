"""E5 — the GNN classifier's accuracy claim (Section V-A).

The paper trains Φ to 98% accuracy over the 12 ACFG families before
explaining it.  This bench reports the scaled pipeline's held-out
accuracy and benchmarks a single classification forward pass.
"""

import pytest

pytestmark = pytest.mark.slow


def test_bench_gnn_forward(benchmark, artifacts):
    graph = artifacts.test_set.graphs[0]
    label = benchmark(artifacts.gnn.predict, graph)
    assert 0 <= label < artifacts.test_set.num_classes


def test_bench_gnn_accuracy_report(benchmark, artifacts):
    from repro.gnn import evaluate_accuracy

    accuracy = benchmark.pedantic(
        evaluate_accuracy, args=(artifacts.gnn, artifacts.test_set),
        rounds=1, iterations=1,
    )
    print(f"\nGNN held-out accuracy: {accuracy:.3f} (paper: 0.98 at full scale)")
    # At bench scale the classifier must be far above chance (1/12).
    assert accuracy > 0.5


def test_bench_per_family_accuracy(benchmark, artifacts):
    from collections import Counter

    correct: Counter = Counter()
    total: Counter = Counter()

    def tally():
        correct.clear()
        total.clear()
        for graph in artifacts.test_set:
            total[graph.family] += 1
            if artifacts.gnn.predict(graph) == graph.label:
                correct[graph.family] += 1

    benchmark.pedantic(tally, rounds=1, iterations=1)
    print()
    for family in artifacts.test_set.families:
        if total[family]:
            print(f"  {family:10s} {correct[family]}/{total[family]}")
    assert sum(correct.values()) > 0
