"""A2 — ablation: the step-size trade-off (Section IV's discussion).

The paper: "using a large step size would result in large subgraphs
while using a small one would increase the time in finding subgraphs."
This bench quantifies both sides: explanation wall-clock and AUC for
step sizes 5, 10, 20 and 50.
"""

import pytest

pytestmark = pytest.mark.slow

import time

from repro.explain import accuracy_auc, sweep_accuracy_curve


def test_bench_ablation_step_size(benchmark, artifacts):
    explainer = artifacts.explainers["CFGExplainer"]
    graphs = artifacts.test_set.graphs[:10]

    print()
    print(f"{'step size':>10s} | {'levels':>6s} | {'time/graph':>11s} | {'AUC':>6s}")
    print("-" * 45)
    results = {}
    for step in (5, 10, 20, 50):
        start = time.perf_counter()
        explanations = [explainer.explain(g, step_size=step) for g in graphs]
        elapsed = (time.perf_counter() - start) / len(graphs)
        fractions, accuracies = sweep_accuracy_curve(artifacts.gnn, explanations)
        auc = accuracy_auc(fractions, accuracies)
        results[step] = (elapsed, auc)
        print(f"{step:>9d}% | {len(fractions):>6d} | {elapsed:>9.3f} s | {auc:.3f}")

    # Benchmark the default step size.
    benchmark.pedantic(
        explainer.explain, args=(graphs[0],), kwargs={"step_size": 10},
        rounds=3, iterations=1,
    )

    # Smaller steps do strictly more pruning iterations, so they cannot
    # be faster than the coarsest step.
    assert results[5][0] >= results[50][0]
