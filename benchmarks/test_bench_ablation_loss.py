"""A4 — ablation: what each loss extension buys (DESIGN.md §decisions).

Compares three trainings of Θ on the same pipeline:

* the literal Algorithm 1 (bare NLL, degenerate Ψ ≈ 1 optimum),
* + score sparsity,
* + sparsity + the frozen-Φ faithfulness probe (repository default).

Reported per variant: the spread of the learned scores (the bare loss
saturates them) and the explanation AUC on held-out graphs.
"""

import pytest

pytestmark = pytest.mark.slow

import numpy as np

from repro.core import CFGExplainer, CFGExplainerModel, train_cfgexplainer
from repro.core.training import precompute_embeddings
from repro.explain import accuracy_auc, sweep_accuracy_curve
from repro.nn import Tensor


VARIANTS = {
    "literal Alg.1": dict(
        sparsity_weight=0.0, entropy_weight=0.0, faithfulness_weight=0.0
    ),
    "+ sparsity": dict(
        sparsity_weight=0.3, entropy_weight=0.0, faithfulness_weight=0.0
    ),
    "+ faithfulness": dict(
        sparsity_weight=0.3, entropy_weight=0.0, faithfulness_weight=1.0
    ),
}


def test_bench_ablation_loss_terms(benchmark, artifacts):
    train_set = artifacts.train_set
    graphs = artifacts.test_set.graphs[:10]
    cached = precompute_embeddings(artifacts.gnn, artifacts.test_set)[:10]

    print()
    print(f"{'variant':16s} | {'Ψ spread (std)':>14s} | {'AUC':>6s}")
    print("-" * 45)
    results = {}
    for name, options in VARIANTS.items():
        theta = CFGExplainerModel(
            artifacts.gnn.embedding_size,
            artifacts.test_set.num_classes,
            rng=np.random.default_rng(7),
        )
        train_cfgexplainer(
            theta,
            artifacts.gnn,
            train_set,
            num_epochs=artifacts.config.explainer_epochs,
            minibatch_size=artifacts.config.explainer_minibatch,
            lr=artifacts.config.explainer_lr,
            seed=0,
            **options,
        )
        scores = np.concatenate(
            [
                theta.node_scores(
                    Tensor(sample.embeddings), int(sample.active_mask.sum())
                )
                for sample in cached
            ]
        )
        explainer = CFGExplainer(artifacts.gnn, theta)
        explanations = [explainer.explain(g) for g in graphs]
        fractions, accuracies = sweep_accuracy_curve(artifacts.gnn, explanations)
        auc = accuracy_auc(fractions, accuracies)
        results[name] = (scores.std(), auc)
        print(f"{name:16s} | {scores.std():>14.4f} | {auc:>6.3f}")

    # The full loss must not be materially worse than the literal one —
    # its value shows in the printed AUC column (and, at convergence, in
    # the saturation of the literal variant's scores; at bench-scale
    # epoch counts the literal variant may not have fully saturated yet).
    assert results["+ faithfulness"][1] >= results["literal Alg.1"][1] - 0.15

    # Benchmark one short training of the default variant.
    benchmark.pedantic(
        lambda: train_cfgexplainer(
            CFGExplainerModel(
                artifacts.gnn.embedding_size,
                artifacts.test_set.num_classes,
                rng=np.random.default_rng(8),
            ),
            artifacts.gnn,
            train_set,
            num_epochs=20,
            minibatch_size=16,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
