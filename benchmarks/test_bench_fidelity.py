"""E6 — fidelity metrics at fixed sparsity (Section V-B's discussion).

The paper notes its accuracy metric corresponds to fidelity-^acc at a
fixed sparsity level and defers a full fidelity study to future work;
this bench runs that study: fidelity- (keep only the explanation) and
fidelity+ (remove the explanation) at 20% sparsity for all explainers.

Expected shape: CFGExplainer has the lowest fidelity- (its subgraphs
suffice to reproduce predictions) among the explainers, and a positive
fidelity+ (removing its chosen nodes hurts).
"""

import pytest

pytestmark = pytest.mark.slow

from repro.explain import fidelity_minus_acc, fidelity_plus_acc


def _explanations(artifacts, name, count=12):
    explainer = artifacts.explainers[name]
    return [explainer.explain(g) for g in artifacts.test_set.graphs[:count]]


def test_bench_fidelity_report(benchmark, artifacts):
    results = {}
    for name in artifacts.explainers:
        explanations = _explanations(artifacts, name)
        results[name] = (
            fidelity_minus_acc(artifacts.gnn, explanations, 0.2),
            fidelity_plus_acc(artifacts.gnn, explanations, 0.2),
        )

    print()
    print(f"{'Explainer':14s} | {'fidelity-':>10s} | {'fidelity+':>10s}  (at 20% sparsity)")
    print("-" * 45)
    for name, (minus, plus) in results.items():
        print(f"{name:14s} | {minus:10.3f} | {plus:10.3f}")

    # Benchmark the metric computation itself on precomputed explanations.
    explanations = _explanations(artifacts, "CFGExplainer", count=6)
    benchmark.pedantic(
        fidelity_minus_acc,
        args=(artifacts.gnn, explanations, 0.2),
        rounds=2,
        iterations=1,
    )
    for minus, plus in results.values():
        assert -1.0 <= minus <= 1.0
        assert -1.0 <= plus <= 1.0
