"""E2 — Table III: top-10% / top-20% accuracy and AUC per family.

Prints the full table.  The paper's shape: CFGExplainer's Average row
beats GNNExplainer, SubgraphX and PGExplainer on all three summary
columns, by a large factor at 10% and 20%.
"""

import pytest

pytestmark = pytest.mark.slow

import numpy as np

from repro.eval.tables import build_table3, format_table3


def test_bench_table3(benchmark, sweeps):
    rows = benchmark.pedantic(build_table3, args=(sweeps,), rounds=1, iterations=1)
    print()
    print(format_table3(rows))

    average = rows[-1]
    assert average.family == "Average"
    cfg_auc = average.cells["CFGExplainer"][2]
    baseline_aucs = [
        average.cells[name][2]
        for name in ("GNNExplainer", "SubgraphX", "PGExplainer")
    ]
    print(
        f"\nCFGExplainer average AUC {cfg_auc:.3f} vs baselines "
        f"{np.round(baseline_aucs, 3).tolist()} "
        f"(paper: 0.80 vs 0.49/0.48/0.51)"
    )
