"""E1 — Figure 2: subgraph classification accuracy vs kept-node share.

Regenerates all twelve panels (eleven malware families + benign) for
the four explainers and prints them.  The benchmarked unit is one
family sweep with CFGExplainer — the operation Figure 2 repeats.

Paper shape to check in the output: CFGExplainer's curves dominate the
baselines' at small subgraph sizes for most families, and every curve
reaches 1.0 at 100%.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.eval.sweep import sweep_family
from repro.eval.tables import format_figure2


def test_bench_figure2_sweep_one_family(benchmark, artifacts):
    family = "Bagle"
    graphs = artifacts.test_set.of_family(family)
    explainer = artifacts.explainers["CFGExplainer"]

    result = benchmark.pedantic(
        sweep_family,
        args=(artifacts.gnn, explainer, graphs, family),
        rounds=1,
        iterations=1,
    )
    assert result.accuracies[-1] == 1.0


def test_bench_figure2_full_grid(benchmark, sweeps, artifacts):
    """Print the complete Figure 2 text rendering."""
    print()
    print(f"[GNN test accuracy: {artifacts.gnn_test_accuracy:.3f}]")
    print(benchmark(format_figure2, sweeps))
    # Every family/explainer curve must exist and end at 1.0.
    for family, by_explainer in sweeps.items():
        assert set(by_explainer) == set(artifacts.explainers)
        for sweep in by_explainer.values():
            assert sweep.accuracies[-1] == 1.0
