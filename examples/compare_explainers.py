"""Head-to-head comparison of the four explainers on one family.

Reproduces one panel of the paper's Figure 2: the classification
accuracy retained by subgraphs of growing size, for CFGExplainer,
GNNExplainer, SubgraphX and PGExplainer, on a family of your choice.

Usage::

    python examples/compare_explainers.py [family]
"""

import sys
import time

from repro import ExperimentConfig, FAMILIES, run_pipeline
from repro.eval.sweep import sweep_family


def main(family: str = "Bagle") -> None:
    if family not in FAMILIES:
        raise SystemExit(f"unknown family {family!r}; pick one of {FAMILIES}")

    config = ExperimentConfig(
        samples_per_family=10,
        gnn_epochs=80,
        explainer_epochs=250,
    )
    print("Training the pipeline...")
    artifacts = run_pipeline(config)
    print(f"GNN test accuracy: {artifacts.gnn_test_accuracy:.1%}\n")

    graphs = artifacts.test_set.of_family(family)
    print(f"Explaining {len(graphs)} held-out {family} graphs "
          f"with each of the four explainers:\n")

    header = "size%:   " + "  ".join(f"{p:4d}" for p in range(10, 101, 10))
    print(header)
    for name, explainer in artifacts.explainers.items():
        start = time.perf_counter()
        sweep = sweep_family(artifacts.gnn, explainer, graphs, family)
        elapsed = time.perf_counter() - start
        series = "  ".join(f"{a:4.2f}" for a in sweep.accuracies)
        print(f"{name:14s} {series}  AUC={sweep.auc:.3f} ({elapsed:.1f}s)")

    print(
        "\nA better explainer keeps accuracy high at small sizes "
        "(left side of the curve) — compare the AUC column."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "Bagle")
