"""Explain your own disassembly listing.

Shows the adoption path for real analyses: paste (or load) a textual
disassembly listing — the kind IDA Pro or Ghidra exports — parse it
into a CFG, extract the paper's Table I features, and run a trained
CFGExplainer over it.  The classifier here is trained on the synthetic
corpus, so its *label* for your listing is only meaningful relative to
those families; the interesting output is the block importance ranking
and the pattern analysis.

Usage::

    python examples/explain_your_own_disassembly.py [listing.asm]
"""

import sys

from repro import ExperimentConfig, FAMILIES, run_pipeline
from repro.acfg import from_sample
from repro.analysis import macro_analysis, micro_analysis
from repro.disasm import build_cfg
from repro.disasm.parser import parse_program
from repro.malgen.corpus import LabeledSample, block_motif_tags
from repro.viz import render_block_listing

# A hand-written listing with a classic credential-stealer shape:
# an XOR string decoder, a registry harvest loop, and an exfil socket.
DEMO_LISTING = """
start:
    push ebp
    mov ebp, esp
    call decode_strings
    call harvest
    call exfil
    pop ebp
    ret

decode_strings:
    mov esi, offset_blob
    mov ecx, 64
decode_loop:
    mov al, [esi]
    xor al, 5Ah
    mov [esi], al
    inc esi
    dec ecx
    jnz decode_loop
    ret

harvest:
    call ds:RegOpenKeyExA
    mov ebx, 0
harvest_loop:
    call ds:RegQueryValueExA
    test eax, eax
    jnz harvest_done
    inc ebx
    cmp ebx, 8
    jl harvest_loop
harvest_done:
    call ds:RegCloseKey
    ret

exfil:
    call ds:WSAStartup
    call ds:socket
    call ds:connect
    call ds:send
    call ds:closesocket
    ret
"""


def main(path: str | None = None) -> None:
    listing = open(path).read() if path else DEMO_LISTING
    program = parse_program(listing, name="user_sample")
    cfg = build_cfg(program)
    print(f"Parsed {len(program)} instructions into {cfg.node_count} basic blocks.")

    print("\nTraining the pipeline on the synthetic corpus...")
    config = ExperimentConfig(
        samples_per_family=8, gnn_epochs=60, explainer_epochs=150
    )
    artifacts = run_pipeline(config)

    # Wrap the parsed CFG like a corpus sample (label unknown -> 0).
    sample = LabeledSample(
        program=program,
        cfg=cfg,
        family="unknown",
        label=0,
        motif_spans=[],
        block_tags=block_motif_tags(cfg, []),
    )
    graph = from_sample(sample, pad_to=artifacts.test_set.n)
    graph = artifacts.scaler.transform(graph)

    predicted = artifacts.gnn.predict(graph)
    print(f"Classifier's nearest family: {FAMILIES[predicted]}")

    explanation = artifacts.explainers["CFGExplainer"].explain(graph, step_size=20)
    print("\nMost important blocks:")
    print(render_block_listing(cfg, explanation, top_k=4))

    top = explanation.top_nodes(0.4).tolist()
    print("\nPatterns in the important blocks:")
    for finding in micro_analysis(cfg, top):
        print(f"  {finding}")
    for hypothesis in macro_analysis(cfg, top):
        print(f"  {hypothesis}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
