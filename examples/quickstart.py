"""Quickstart: train the pipeline and explain one malware sample.

Runs the whole CFGExplainer workflow end to end on a small synthetic
corpus — generate ACFGs, train the GCN malware classifier, train the
explainer, and print the most important basic blocks of one Bagle
sample together with the accuracy retained by its top-20% subgraph.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import FAMILIES, ExperimentConfig, run_pipeline
from repro.explain import subgraph_accuracy


def main() -> None:
    config = ExperimentConfig(
        samples_per_family=8,
        gnn_epochs=60,
        explainer_epochs=150,
    )
    print("Training the pipeline (GNN classifier + CFGExplainer)...")
    artifacts = run_pipeline(config, verbose=False)
    print(f"GNN test accuracy: {artifacts.gnn_test_accuracy:.1%}\n")

    # Pick one malware graph from the held-out test set.
    graph = artifacts.test_set.of_family("Bagle")[0]
    sample = artifacts.sample_for(graph.name)
    explainer = artifacts.explainers["CFGExplainer"]

    explanation = explainer.explain(graph, step_size=10)
    predicted = FAMILIES[explanation.predicted_class]
    print(f"Sample {graph.name}: {graph.n_real} basic blocks, "
          f"classified as {predicted} (truth: {graph.family})")

    print("\nTop 5 most important basic blocks:")
    for rank, node in enumerate(explanation.node_order[:5], start=1):
        block = sample.cfg.blocks[node]
        listing = "; ".join(str(i) for i in block.instructions[:4])
        suffix = " ..." if len(block.instructions) > 4 else ""
        print(f"  {rank}. block {node:3d}  [{listing}{suffix}]")

    accuracy = subgraph_accuracy(artifacts.gnn, [explanation], fraction=0.2)
    kept = explanation.top_nodes(0.2).size
    print(
        f"\nKeeping only the top 20% blocks ({kept}/{graph.n_real}) "
        f"{'preserves' if accuracy == 1.0 else 'does not preserve'} "
        f"the original classification."
    )
    np.set_printoptions(precision=3, suppress=True)
    print(f"Node importance scores (first 10): {explanation.node_scores[:10]}")


if __name__ == "__main__":
    main()
