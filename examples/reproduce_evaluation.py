"""Reproduce the paper's full evaluation section in one run.

Generates every artifact of Section V on the synthetic corpus:

* Figure 2 — per-family accuracy-vs-subgraph-size curves,
* Table III — top-10% / top-20% accuracy and AUC per family,
* Table IV — offline training time and per-explanation time,
* Table V — micro-level patterns found in top-20% subgraphs.

This is the heavyweight example (several minutes on CPU).  Pass
``--quick`` for a reduced configuration.

Usage::

    python examples/reproduce_evaluation.py [--quick]
"""

import sys

from repro import ExperimentConfig, run_pipeline
from repro.analysis import build_family_reports
from repro.analysis.report import format_table_v
from repro.eval import (
    build_table3,
    format_figure2,
    format_table3,
    format_table4,
    measure_timings,
    sweep_all_families,
)


def main(quick: bool = False) -> None:
    config = (
        ExperimentConfig(
            samples_per_family=6,
            gnn_epochs=50,
            explainer_epochs=120,
            subgraphx_iterations=10,
        )
        if quick
        else ExperimentConfig()
    )

    print("=== Pipeline (corpus, GNN, offline explainer training) ===")
    artifacts = run_pipeline(config, verbose=False)
    print(f"GNN test accuracy: {artifacts.gnn_test_accuracy:.1%} "
          f"(paper: 98% on the real YANCFG dataset)\n")

    print("=== Figure 2: accuracy of pruned subgraphs, per family ===")
    sweeps = sweep_all_families(
        artifacts.gnn, artifacts.explainers, artifacts.test_set,
        step_size=config.step_size,
    )
    print(format_figure2(sweeps))

    print("=== Table III: top 10% / 20% accuracy and AUC ===")
    print(format_table3(build_table3(sweeps)))

    print("\n=== Table IV: explanation time ===")
    timing_graphs = artifacts.test_set.graphs[: min(8, len(artifacts.test_set))]
    timings = measure_timings(
        artifacts.explainers, timing_graphs, artifacts.offline_training_seconds
    )
    print(format_table4(timings))

    print("\n=== Table V: patterns in top-20% subgraphs (CFGExplainer) ===")
    cfgexplainer = artifacts.explainers["CFGExplainer"]
    pairs = []
    for family in artifacts.test_set.families:
        for graph in artifacts.test_set.of_family(family)[:2]:
            sample = artifacts.sample_for(graph.name)
            pairs.append((sample, cfgexplainer.explain(graph)))
    print(format_table_v(build_family_reports(pairs)))


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
